package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"time"

	"sync/atomic"

	"nevermind/internal/obs"
	"nevermind/internal/serve"
	"nevermind/internal/wal"
)

// errGone marks a stream poll the leader answered 410: the WAL chain no
// longer reaches the follower's position, so only a fresh checkpoint
// bootstrap can resume replication.
var errGone = errors.New("replica: leader pruned past our position")

// FollowerConfig assembles a replication follower.
type FollowerConfig struct {
	// Leader is the leader's base URL (e.g. http://host:port).
	Leader string
	// ID names this follower to the leader's retention tracking. Defaults to
	// host-pid.
	ID string
	// Client issues the HTTP requests. Defaults to a dedicated client with no
	// overall timeout (streams long-poll); cancellation rides the context.
	Client *http.Client
	// Shards sizes every store the follower builds (serve.NewStore; <= 0
	// picks the store's default). Snapshots are deterministic regardless of
	// shard count, so the leader's setting need not match.
	Shards int
	// SwapStore installs a fully caught-up store into the serving layer
	// (serve.Server.SwapStore). Called once per (re-)bootstrap; never called
	// with a store that is behind what readers already saw.
	SwapStore func(*serve.Store)
	// PollWait is the long-poll wait requested per stream poll. Default 2s.
	PollWait time.Duration
	// RetryBase/RetryMax bound the backoff between failed polls. Defaults
	// 100ms / 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Sleep is the backoff seam; tests inject a no-op. Defaults to time.Sleep
	// (context-aware).
	Sleep func(context.Context, time.Duration)
	// Reg, when non-nil, registers the follower metrics.
	Reg *obs.Registry
}

// Follower replicates a leader's store: bootstrap from the newest checkpoint,
// then tail the WAL stream, applying records through Store.ApplyWALRecord —
// the same path crash recovery uses, so a follower at version V is
// bit-identical to the leader at version V. When the leader answers 410 Gone
// (its retention pruned past us), the follower rebuilds a fresh store from a
// new checkpoint offline and swaps it in whole: readers never see torn state
// and never go backwards.
type Follower struct {
	cfg    FollowerConfig
	client *http.Client
	walURL string
	ckpURL string

	store *serve.Store // current published apply target; run-loop owned

	applied    atomic.Uint64 // published store version
	leaderV    atomic.Uint64 // leader tail per the last stream header
	connected  atomic.Bool
	bootstraps atomic.Uint64
	appliedRec atomic.Uint64
	corrupt    atomic.Uint64

	fetchDur *obs.Histogram
	applyDur *obs.Histogram
}

// NewFollower validates the config and builds a Follower. Call Bootstrap
// before serving reads, then Run to tail the leader.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	base, err := url.Parse(cfg.Leader)
	if err != nil || base.Scheme == "" || base.Host == "" {
		return nil, fmt.Errorf("replica: bad leader URL %q", cfg.Leader)
	}
	if cfg.SwapStore == nil {
		return nil, errors.New("replica: follower needs a SwapStore func")
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 2 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		}
	}
	f := &Follower{
		cfg:    cfg,
		client: cfg.Client,
		walURL: base.JoinPath("/v1/repl/wal").String(),
		ckpURL: base.JoinPath("/v1/repl/checkpoint").String(),
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if cfg.Reg != nil {
		f.register(cfg.Reg)
	}
	return f, nil
}

// Status reports the follower's replication position for the serving layer
// (X-Replica-Lag header, healthz).
func (f *Follower) Status() serve.ReplicaStatus {
	return serve.ReplicaStatus{
		Applied:       f.applied.Load(),
		LeaderVersion: f.leaderV.Load(),
		Connected:     f.connected.Load(),
	}
}

// Bootstraps counts completed (re-)bootstraps.
func (f *Follower) Bootstraps() uint64 { return f.bootstraps.Load() }

// Bootstrap builds the initial store: fetch the newest checkpoint, restore
// it, catch up to the leader's current tail, then publish via SwapStore.
// Call before accepting read traffic.
func (f *Follower) Bootstrap(ctx context.Context) error {
	st, err := f.buildStore(ctx, 0)
	if err != nil {
		return err
	}
	f.publish(st)
	return nil
}

// Run tails the leader until the context ends, long-polling the WAL stream
// and applying records to the published store. A 410 from the leader
// triggers an in-loop re-bootstrap; transport errors back off and retry.
// Returns the context's error on shutdown.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.cfg.RetryBase
	for {
		if err := ctx.Err(); err != nil {
			f.connected.Store(false)
			return err
		}
		_, err := f.poll(ctx, f.store, f.cfg.PollWait)
		f.applied.Store(f.store.Version())
		switch {
		case err == nil:
			f.connected.Store(true)
			backoff = f.cfg.RetryBase
			continue // pacing comes from the leader-side long poll
		case errors.Is(err, errGone):
			f.connected.Store(false)
			st, berr := f.buildStore(ctx, f.applied.Load())
			if berr == nil {
				f.publish(st)
				f.connected.Store(true)
				backoff = f.cfg.RetryBase
				continue
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			err = berr
			fallthrough
		default:
			f.connected.Store(false)
			if ctx.Err() != nil {
				return ctx.Err()
			}
			f.cfg.Sleep(ctx, backoff)
			backoff = min(backoff*2, f.cfg.RetryMax)
		}
	}
}

// publish installs a caught-up store as the serving store and makes it the
// tail loop's apply target.
func (f *Follower) publish(st *serve.Store) {
	f.store = st
	f.applied.Store(st.Version())
	f.cfg.SwapStore(st)
	f.bootstraps.Add(1)
}

// buildStore produces a fresh store restored from the leader's newest
// checkpoint and caught up at least to floor (the version readers already
// saw; 0 on first bootstrap). The store is private until returned, so a
// half-built state is never observable.
func (f *Follower) buildStore(ctx context.Context, floor uint64) (*serve.Store, error) {
	st := serve.NewStore(f.cfg.Shards)
	if err := f.restore(ctx, st); err != nil {
		return nil, err
	}
	// Catch up past the floor and to the leader tail as of the restore. The
	// checkpoint the restore fetched can predate the floor if the leader
	// checkpoints lazily; streaming the gap closes it.
	for {
		n, err := f.poll(ctx, st, 0)
		if err != nil {
			if errors.Is(err, errGone) {
				// Pruned again mid-catch-up: the next checkpoint is newer by
				// definition, so restart from it.
				st = serve.NewStore(f.cfg.Shards)
				if err := f.restore(ctx, st); err != nil {
					return nil, err
				}
				continue
			}
			return nil, err
		}
		if st.Version() >= floor && st.Version() >= f.leaderV.Load() {
			return st, nil
		}
		if n == 0 {
			if st.Version() < floor {
				return nil, fmt.Errorf("replica: leader tail %d is behind our published version %d", f.leaderV.Load(), floor)
			}
			return st, nil
		}
	}
}

// restore fetches a checkpoint and seats it into the (empty) store. A 404
// means the leader has never checkpointed: start from version 0. A download
// that fails to decode walks back to the previous checkpoint (?before=V)
// rather than failing the bootstrap outright.
func (f *Follower) restore(ctx context.Context, st *serve.Store) error {
	var before uint64
	for attempt := 0; attempt < 3; attempt++ {
		u := f.ckpURL
		if before != 0 {
			u += "?before=" + strconv.FormatUint(before, 10)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return err
		}
		t0 := time.Now()
		resp, err := f.client.Do(req)
		if err != nil {
			return fmt.Errorf("replica: checkpoint fetch: %w", err)
		}
		if resp.StatusCode == http.StatusNotFound {
			drain(resp)
			return nil // no checkpoint yet; stream from 0
		}
		if resp.StatusCode != http.StatusOK {
			err := fmt.Errorf("replica: checkpoint fetch: %s", respError(resp))
			drain(resp)
			return err
		}
		var state serve.StoreState
		v, err := wal.ReadCheckpoint(resp.Body, &state)
		drain(resp)
		if err != nil {
			f.corrupt.Add(1)
			// Walk back past the advertised version; a torn download of the
			// same file also just retries it when the header is absent.
			if hv, herr := strconv.ParseUint(resp.Header.Get("X-Checkpoint-Version"), 10, 64); herr == nil {
				before = hv
			}
			continue
		}
		if f.fetchDur != nil {
			f.fetchDur.Observe(time.Since(t0))
		}
		if err := st.RestoreState(&state); err != nil {
			return fmt.Errorf("replica: checkpoint %d: %w", v, err)
		}
		return nil
	}
	return errors.New("replica: no decodable checkpoint after 3 attempts")
}

// poll runs one WAL stream request from st's version and applies every
// record it carries. Returns the number applied. A decode error mid-stream
// is not fatal: the prefix already applied is valid (frames are CRC-checked
// and applied in version order), so the next poll resumes from the new
// position — only errGone forces a re-bootstrap.
func (f *Follower) poll(ctx context.Context, st *serve.Store, wait time.Duration) (int, error) {
	q := url.Values{
		"from": {strconv.FormatUint(st.Version(), 10)},
		"id":   {f.cfg.ID},
	}
	if wait > 0 {
		q.Set("wait", wait.String())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.walURL+"?"+q.Encode(), nil)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("replica: stream fetch: %w", err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return 0, errGone
	default:
		return 0, fmt.Errorf("replica: stream fetch: %s", respError(resp))
	}
	sr, err := wal.NewStreamReader(resp.Body)
	if err != nil {
		f.corrupt.Add(1)
		return 0, fmt.Errorf("replica: stream header: %w", err)
	}
	if lv := sr.LeaderVersion(); lv > f.leaderV.Load() {
		f.leaderV.Store(lv)
	}
	if f.fetchDur != nil {
		f.fetchDur.Observe(time.Since(t0))
	}
	applied := 0
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			// Torn or corrupt tail: count it and resume from the applied
			// prefix on the next poll. Nothing invalid reached the store.
			f.corrupt.Add(1)
			return applied, nil
		}
		a0 := time.Now()
		if err := st.ApplyWALRecord(rec); err != nil {
			// A decodable record that fails validation or contiguity can only
			// mean a diverged leader; re-bootstrap rather than serve a guess.
			return applied, fmt.Errorf("%w (apply: %v)", errGone, err)
		}
		if f.applyDur != nil {
			f.applyDur.Observe(time.Since(a0))
		}
		applied++
		f.appliedRec.Add(1)
	}
}

func (f *Follower) register(reg *obs.Registry) {
	reg.GaugeFunc("nevermind_replica_lag_versions",
		"Ingest versions the follower trails the leader's durable tail.",
		func() float64 { return float64(f.Status().Lag()) })
	reg.CounterFunc("nevermind_replica_applied_total",
		"WAL records applied from the replication stream.",
		func() float64 { return float64(f.appliedRec.Load()) })
	reg.CounterFunc("nevermind_replica_bootstraps_total",
		"Checkpoint bootstraps completed (first boot and 410-triggered).",
		func() float64 { return float64(f.bootstraps.Load()) })
	reg.CounterFunc("nevermind_replica_stream_corrupt_total",
		"Torn or undecodable replication reads (checkpoint or stream).",
		func() float64 { return float64(f.corrupt.Load()) })
	reg.GaugeFunc("nevermind_replica_connected",
		"1 while the last leader poll succeeded, else 0.",
		func() float64 {
			if f.connected.Load() {
				return 1
			}
			return 0
		})
	f.fetchDur = reg.Histogram("nevermind_replica_fetch_duration_seconds",
		"Leader fetch time: checkpoint downloads and stream polls (to first byte).", nil)
	f.applyDur = reg.Histogram("nevermind_replica_apply_duration_seconds",
		"Per-record ApplyWALRecord time on the follower.", nil)
}

// drain consumes and closes a response body so the connection is reusable.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// respError summarises a non-200 response for an error message.
func respError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return fmt.Sprintf("%s: %s", resp.Status, string(body))
}

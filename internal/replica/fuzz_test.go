package replica_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"nevermind/internal/data"
	"nevermind/internal/serve"
	"nevermind/internal/wal"
)

// healthyStream builds a valid replication stream: header at leader version 3
// plus records v1..v3 covering both ops, exactly what a leader would ship a
// follower starting from 0.
func healthyStream(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	sw, err := wal.NewStreamWriter(&buf, 3)
	if err != nil {
		tb.Fatal(err)
	}
	recs := []wal.Record{
		{Version: 1, Op: wal.OpTests, Tests: []wal.TestRec{
			{Line: 5, Week: 40, F: []float32{1, 2, 3}},
			{Line: 9, Week: 40, Missing: true},
		}},
		{Version: 2, Op: wal.OpTickets, Tickets: []data.Ticket{
			{ID: 1, Line: 5, Day: data.SaturdayOf(40), Category: 2},
		}},
		{Version: 3, Op: wal.OpTests, Tests: []wal.TestRec{
			{Line: 5, Week: 41, F: []float32{4, 5}},
		}},
	}
	for i := range recs {
		if err := sw.WriteRecord(&recs[i]); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzReplStream fuzzes the replication wire decoder with the same contract
// FuzzWALDecode pins for segments: whatever bytes arrive — truncated, bit-
// flipped, garbage — a decodable frame must apply cleanly, anything else must
// surface as a corrupt-stream error, and a failed decode must never mutate
// the store. Decoding is also deterministic: the same bytes always yield the
// same record sequence.
func FuzzReplStream(f *testing.F) {
	healthy := healthyStream(f)
	f.Add(healthy)
	// Truncations at and around every structural boundary: inside the
	// header, at the header edge, inside a frame header, inside a payload.
	for _, n := range []int{0, 1, wal.StreamHeaderLen - 1, wal.StreamHeaderLen,
		wal.StreamHeaderLen + 3, wal.StreamHeaderLen + 8, len(healthy) / 2, len(healthy) - 1} {
		if n <= len(healthy) {
			f.Add(healthy[:n])
		}
	}
	// Bit flips in the magic, the claimed leader version, a frame length,
	// a CRC, and a payload byte.
	for _, off := range []int{0, 9, 15, wal.StreamHeaderLen, wal.StreamHeaderLen + 4, wal.StreamHeaderLen + 11} {
		mut := append([]byte(nil), healthy...)
		mut[off] ^= 0x40
		f.Add(mut)
	}
	// A huge frame-length claim after the healthy prefix, and garbage tails.
	f.Add(append(append([]byte(nil), healthy...), 0xff, 0xff, 0xff, 0x7f))
	f.Add(append(append([]byte(nil), healthy...), []byte("not a frame at all")...))
	f.Add([]byte("NVMREPL1 but not really a header"))

	f.Fuzz(func(t *testing.T, b []byte) {
		decode := func() (versions []uint64, ops []wal.Op) {
			st := serve.NewStore(2)
			sr, err := wal.NewStreamReader(bytes.NewReader(b))
			if err != nil {
				// A rejected header must be a corrupt-stream error, not a
				// silent success or an unrelated failure.
				if !wal.IsCorrupt(err) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
					t.Fatalf("header rejection with non-corrupt error: %v", err)
				}
				return nil, nil
			}
			for {
				before := st.Version()
				rec, err := sr.Next()
				if err != nil {
					if !errors.Is(err, io.EOF) && !wal.IsCorrupt(err) {
						t.Fatalf("Next() failed with non-corrupt, non-EOF error: %v", err)
					}
					break
				}
				versions = append(versions, rec.Version)
				ops = append(ops, rec.Op)
				if err := st.ApplyWALRecord(rec); err != nil {
					// A decodable but inapplicable record (gap, bad batch)
					// must leave the store exactly where it was — the
					// follower treats this as leader divergence.
					if got := st.Version(); got != before {
						t.Fatalf("failed apply mutated the store: version %d -> %d", before, got)
					}
					break
				}
				if got := st.Version(); got != rec.Version {
					t.Fatalf("applied record %d but store is at %d", rec.Version, got)
				}
			}
			return versions, ops
		}

		v1, o1 := decode()
		v2, o2 := decode()
		if len(v1) != len(v2) {
			t.Fatalf("non-deterministic decode: %d records then %d", len(v1), len(v2))
		}
		for i := range v1 {
			if v1[i] != v2[i] || o1[i] != o2[i] {
				t.Fatalf("non-deterministic decode at %d: (%d,%d) vs (%d,%d)",
					i, v1[i], o1[i], v2[i], o2[i])
			}
		}
	})
}

package chaos

import (
	"testing"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/sim"
)

// The chaos fixture is deliberately smaller than serve's: the soak runs the
// pipeline many times over, and the models only need to be mechanically
// sound — the soak asserts convergence and determinism, not accuracy.
var (
	fixtureDS   *data.Dataset
	fixturePred *core.TicketPredictor
)

func fixture(t *testing.T) (*data.Dataset, *core.TicketPredictor) {
	t.Helper()
	if fixtureDS == nil {
		res, err := sim.Run(sim.DefaultConfig(800, 7))
		if err != nil {
			t.Fatal(err)
		}
		fixtureDS = res.Dataset

		cfg := core.DefaultPredictorConfig(fixtureDS.NumLines, 7)
		cfg.Rounds = 15
		cfg.MaxSelectExamples = 6000
		pred, err := core.TrainPredictor(fixtureDS, features.WeekRange(32, 38), cfg)
		if err != nil {
			t.Fatal(err)
		}
		fixturePred = pred
	}
	return fixtureDS, fixturePred
}

package chaos

import (
	"testing"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
)

// scriptedFeed is a minimal serve.Source over premade batches.
type scriptedFeed struct {
	batches []sim.Batch
	i       int
}

func (f *scriptedFeed) Remaining() int { return len(f.batches) - f.i }
func (f *scriptedFeed) Next() (sim.Batch, bool, error) {
	if f.i >= len(f.batches) {
		return sim.Batch{}, false, nil
	}
	b := f.batches[f.i]
	f.i++
	return b, true, nil
}

func weekBatch(week, n int) sim.Batch {
	b := sim.Batch{Week: week}
	for l := 0; l < n; l++ {
		b.Tests = append(b.Tests, sim.LineTest{
			M: data.Measurement{Line: data.LineID(l), Week: week},
		})
	}
	b.Tickets = append(b.Tickets, data.Ticket{ID: week, Line: 0, Day: data.SaturdayOf(week)})
	return b
}

// TestInjectorDeterminism pins the replay contract: two injectors built
// from the same config produce the identical fault schedule at every site.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{
		Seed:        99,
		SourceError: 0.2, PartialBatch: 0.2, MalformedBatch: 0.2,
		IngestError: 0.4, SnapshotError: 0.4, ReloadError: 0.4,
		SlowShard: 0.5, ShardDelay: time.Millisecond,
		Sleep: func(time.Duration) {},
	}
	schedule := func() []bool {
		in := New(cfg)
		h := in.Hooks()
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, h.IngestTests(1) != nil)
			out = append(out, h.SnapshotBuild(uint64(i)) != nil)
			out = append(out, h.ReloadProbe() != nil)
		}
		return out
	}
	a, b := schedule(), schedule()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at decision %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no faults fired at 40% rates")
	}

	// A different seed yields a different schedule.
	cfg2 := cfg
	cfg2.Seed = 100
	in2 := New(cfg2)
	h2 := in2.Hooks()
	diff := 0
	for i := 0; i < 200; i++ {
		if (h2.IngestTests(1) != nil) != a[i*3] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed change did not move the schedule")
	}
}

// TestInjectorBoundedConsecutive pins the progress guarantee: even at rate
// 1.0 a site fails at most MaxConsecutive times in a row, then is forced to
// pass, so any retry loop with a larger budget always completes.
func TestInjectorBoundedConsecutive(t *testing.T) {
	in := New(Config{Seed: 1, IngestError: 1.0, MaxConsecutive: 3})
	h := in.Hooks()
	run := 0
	passes := 0
	for i := 0; i < 100; i++ {
		if h.IngestTests(1) != nil {
			run++
			if run > 3 {
				t.Fatalf("call %d: %d consecutive failures exceed the bound", i, run)
			}
		} else {
			run = 0
			passes++
		}
	}
	// At rate 1.0 the pattern is exactly fail,fail,fail,pass repeating.
	if passes != 25 {
		t.Fatalf("expected 25 forced passes at rate 1.0, got %d", passes)
	}
}

// TestSourceRedelivery pins the feed contract under injected source faults:
// every week is eventually delivered exactly once and bit-identical to the
// original, in order, regardless of how many faulty attempts precede it;
// Remaining never forgets a pending week.
func TestSourceRedelivery(t *testing.T) {
	const weeks = 12
	var batches []sim.Batch
	for w := 40; w < 40+weeks; w++ {
		batches = append(batches, weekBatch(w, 5))
	}
	in := New(Config{Seed: 3, SourceError: 0.3, PartialBatch: 0.3, MalformedBatch: 0.3})
	src := in.WrapSource(&scriptedFeed{batches: batches})

	store := serve.NewStore(1)
	delivered := map[int]int{}
	var order []int
	attempts := 0
	for {
		rem := src.Remaining()
		b, ok, err := src.Next()
		if !ok {
			break
		}
		attempts++
		if attempts > weeks*(4+1) {
			t.Fatal("source never drained; bound violated")
		}
		if err != nil {
			// Faulty attempt: the week must still be pending.
			if src.Remaining() != rem {
				t.Fatalf("pull error dropped a week from Remaining: %d -> %d", rem, src.Remaining())
			}
			continue
		}
		// A silently malformed batch must fail store validation atomically;
		// that is what guarantees the pipeline discards it and re-pulls.
		recs := make([]serve.TestRecord, len(b.Tests))
		for i, lt := range b.Tests {
			recs[i] = serve.TestRecord{Line: lt.M.Line, Week: lt.M.Week, F: lt.M.F[:]}
		}
		if _, ierr := store.IngestTests(recs); ierr != nil {
			if !serve.IsBadBatch(ierr) {
				t.Fatalf("corrupt batch failed with a non-bad-batch error: %v", ierr)
			}
			if src.Remaining() != rem {
				t.Fatal("malformed delivery consumed the week")
			}
			continue
		}
		// Clean delivery: must match the original bit for bit.
		want := batches[b.Week-40]
		if len(b.Tests) != len(want.Tests) || len(b.Tickets) != len(want.Tickets) {
			t.Fatalf("week %d delivered with %d/%d records, want %d/%d",
				b.Week, len(b.Tests), len(b.Tickets), len(want.Tests), len(want.Tickets))
		}
		for i := range b.Tests {
			if b.Tests[i] != want.Tests[i] {
				t.Fatalf("week %d test %d mutated by the chaos layer", b.Week, i)
			}
		}
		delivered[b.Week]++
		order = append(order, b.Week)
	}
	for w := 40; w < 40+weeks; w++ {
		if delivered[w] != 1 {
			t.Fatalf("week %d delivered %d times", w, delivered[w])
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("weeks delivered out of order: %v", order)
		}
	}
	st := in.Stats()
	if st.SourceErrors+st.PartialBatches+st.MalformedBatches == 0 {
		t.Fatal("no source faults fired at 30% rates; the test lost its adversary")
	}

	// Replay: the same seed over the same weeks injects the same faults.
	in2 := New(Config{Seed: 3, SourceError: 0.3, PartialBatch: 0.3, MalformedBatch: 0.3})
	src2 := in2.WrapSource(&scriptedFeed{batches: batches})
	attempts2 := 0
	for {
		_, ok, _ := src2.Next()
		if !ok {
			break
		}
		attempts2++
	}
	if attempts2 != attempts {
		t.Fatalf("replay took %d attempts, original %d", attempts2, attempts)
	}
	if in2.Stats() != st {
		t.Fatalf("replay fault stats diverged: %+v vs %+v", in2.Stats(), st)
	}
}

// TestPartialAndCorruptBatches pins the two delivery-corruption modes
// directly: truncate yields a strict prefix, corrupt yields a batch the
// store rejects whole while the original batch stays untouched.
func TestPartialAndCorruptBatches(t *testing.T) {
	orig := weekBatch(40, 8)
	origTests := append([]sim.LineTest(nil), orig.Tests...)

	in := New(Config{Seed: 5, PartialBatch: 0.999, MaxConsecutive: 1})
	src := in.WrapSource(&scriptedFeed{batches: []sim.Batch{orig}})
	b, ok, err := src.Next()
	if !ok || err == nil {
		t.Fatalf("first attempt should be a partial delivery, got ok=%v err=%v", ok, err)
	}
	if !serve.IsTransient(err) {
		t.Fatalf("partial delivery error is not transient: %v", err)
	}
	if len(b.Tests) >= len(orig.Tests) && len(b.Tickets) >= len(orig.Tickets) {
		t.Fatal("partial delivery dropped nothing")
	}
	for i := range b.Tests {
		if b.Tests[i] != origTests[i] {
			t.Fatal("truncation reordered or mutated records")
		}
	}

	in2 := New(Config{Seed: 5, MalformedBatch: 0.999, MaxConsecutive: 1})
	src2 := in2.WrapSource(&scriptedFeed{batches: []sim.Batch{weekBatch(40, 8)}})
	bad, ok, err := src2.Next()
	if !ok || err != nil {
		t.Fatalf("malformed delivery must be silent: ok=%v err=%v", ok, err)
	}
	store := serve.NewStore(1)
	recs := make([]serve.TestRecord, len(bad.Tests))
	for i, lt := range bad.Tests {
		recs[i] = serve.TestRecord{Line: lt.M.Line, Week: lt.M.Week, F: lt.M.F[:]}
	}
	if _, ierr := store.IngestTests(recs); !serve.IsBadBatch(ierr) {
		t.Fatalf("store accepted a corrupt batch (err=%v)", ierr)
	}
	if store.Version() != 0 {
		t.Fatal("corrupt batch half-applied")
	}
	// The eventual clean delivery is the original, unmutated.
	clean, ok, err := src2.Next()
	if !ok || err != nil {
		t.Fatalf("second attempt: ok=%v err=%v", ok, err)
	}
	for i := range clean.Tests {
		if clean.Tests[i] != origTests[i] {
			t.Fatal("corruption leaked into the retained batch")
		}
	}
}

// TestNewPanicsOnImpossibleRates pins the constructor guard.
func TestNewPanicsOnImpossibleRates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("source rates summing to 1 did not panic")
		}
	}()
	New(Config{SourceError: 0.5, PartialBatch: 0.3, MalformedBatch: 0.2})
}

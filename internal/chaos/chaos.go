// Package chaos is the deterministic fault-injection layer for the serving
// subsystem. It plugs into the seams internal/serve exposes (the Source
// feed contract and serve.FaultHooks) and fires the failure modes a real
// telemetry-driven deployment sees: transient feed errors, truncated and
// corrupted batches, flaky ingest, failing snapshot rebuilds, slow shards,
// slow requests, and reload probes that cannot run.
//
// Everything is driven by seeded SplitMix64 streams (internal/rng), so a
// fault schedule replays bit-identically from its seed: the soak tests run
// the pipeline under ≥10% fault rates and then assert the run converged to
// the exact state of a clean replay — which is only a meaningful assertion
// because the faults themselves are reproducible.
//
// Faults are bounded by construction: no site fails more than MaxConsecutive
// times in a row, so a retry loop with a larger attempt budget is guaranteed
// to make progress. That mirrors the operating regime the paper's weekly
// loop assumes — outages clear; the system must ride through them.
package chaos

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/drift"
	"nevermind/internal/fleet"
	"nevermind/internal/rng"
	"nevermind/internal/serve"
)

// Config sets the per-site fault probabilities (0 disables a mode) and the
// latency envelopes. Rates are independent per attempt; the source modes
// (SourceError, PartialBatch, MalformedBatch) partition one draw, so their
// sum must stay below 1.
type Config struct {
	// Seed drives every fault decision; same seed, same schedule.
	Seed uint64

	// SourceError is P(a source pull fails outright, delivering nothing).
	SourceError float64
	// PartialBatch is P(a pull delivers a truncated batch together with a
	// transport error — a cut-short read the feed reports).
	PartialBatch float64
	// MalformedBatch is P(a pull silently delivers corrupt records; the
	// store's validation rejects the batch whole and the week re-pulls).
	MalformedBatch float64

	// IngestError is P(a validated ingest batch fails transiently before
	// any state change).
	IngestError float64
	// SnapshotError is P(a snapshot rebuild fails; readers keep the last
	// good snapshot).
	SnapshotError float64
	// ReloadError is P(a model hot-reload probe fails; the old generation
	// keeps serving).
	ReloadError float64

	// SlowShard is P(a shard read during a snapshot build stalls), up to
	// ShardDelay.
	SlowShard  float64
	ShardDelay time.Duration
	// SlowRequest is P(an API request stalls in the handler), up to
	// RequestDelay.
	SlowRequest  float64
	RequestDelay time.Duration

	// RetrainError is P(a drift-loop challenger training attempt fails —
	// the trainer host OOMs, the job is preempted. The loop must retry on a
	// later tick and still produce the same challenger (the training window
	// is anchored at trip time).
	RetrainError float64

	// ShardKill is P(a fleet gateway's request to a shard daemon finds it
	// unreachable — the scaled-out analogue of a machine dying). Bounded by
	// MaxConsecutive like every site, so a killed shard always comes back
	// within the gateway's retry budget or a few probe ticks.
	ShardKill float64

	// MaxConsecutive caps how many times in a row any one site may fail
	// before it is forced to succeed (default 3). Keep it below the
	// pipeline's RetryConfig.MaxAttempts or retries will exhaust.
	MaxConsecutive int

	// Sleep replaces time.Sleep for latency injection (tests pass fakes).
	Sleep func(time.Duration)
}

// Stats counts the faults actually injected, per mode.
type Stats struct {
	SourceErrors     int64
	PartialBatches   int64
	MalformedBatches int64
	IngestFaults     int64
	SnapshotFaults   int64
	ReloadFaults     int64
	SlowShards       int64
	SlowRequests     int64
	ShardKills       int64
	RetrainFaults    int64
}

// Total sums every injected fault.
func (s Stats) Total() int64 {
	return s.SourceErrors + s.PartialBatches + s.MalformedBatches +
		s.IngestFaults + s.SnapshotFaults + s.ReloadFaults +
		s.SlowShards + s.SlowRequests + s.ShardKills + s.RetrainFaults
}

// site labels partition the seed into independent decision streams.
const (
	siteSource uint64 = iota + 1
	siteIngestTests
	siteIngestTickets
	siteSnapshot
	siteReload
	siteShard
	siteRequest
	// siteShardKill is appended after the original sites so arming the
	// fleet family never perturbs the seeded streams of existing soaks.
	siteShardKill
	// siteRetrain likewise: appended last so the drift family leaves every
	// earlier seeded stream untouched.
	siteRetrain
)

// Injector owns the fault processes. Safe for concurrent use: each site
// draws from its own sequence-numbered stream and tracks its own
// consecutive-failure bound.
type Injector struct {
	cfg Config

	srcErrs, partials, malformed atomic.Int64
	ingestFaults                 atomic.Int64
	snapshotFaults               atomic.Int64
	reloadFaults                 atomic.Int64
	slowShards, slowRequests     atomic.Int64

	ingestTestsSite   faultSite
	ingestTicketsSite faultSite
	snapshotSite      faultSite
	reloadSite        faultSite
	shardSite         faultSite
	requestSite       faultSite
	shardKillSite     faultSite
	retrainSite       faultSite

	shardKills    atomic.Int64
	retrainFaults atomic.Int64
}

// faultSite is one independent fault process: a decision sequence plus the
// consecutive-failure bound.
type faultSite struct {
	label       uint64
	seq         atomic.Uint64
	consecutive atomic.Int64
}

// New builds an injector. Panics if the source-mode rates sum to >= 1,
// which would make clean delivery impossible.
func New(cfg Config) *Injector {
	if cfg.SourceError+cfg.PartialBatch+cfg.MalformedBatch >= 1 {
		panic("chaos: source fault rates must sum below 1")
	}
	if cfg.MaxConsecutive <= 0 {
		cfg.MaxConsecutive = 3
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	in := &Injector{cfg: cfg}
	in.ingestTestsSite.label = siteIngestTests
	in.ingestTicketsSite.label = siteIngestTickets
	in.snapshotSite.label = siteSnapshot
	in.reloadSite.label = siteReload
	in.shardSite.label = siteShard
	in.requestSite.label = siteRequest
	in.shardKillSite.label = siteShardKill
	in.retrainSite.label = siteRetrain
	return in
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		SourceErrors:     in.srcErrs.Load(),
		PartialBatches:   in.partials.Load(),
		MalformedBatches: in.malformed.Load(),
		IngestFaults:     in.ingestFaults.Load(),
		SnapshotFaults:   in.snapshotFaults.Load(),
		ReloadFaults:     in.reloadFaults.Load(),
		SlowShards:       in.slowShards.Load(),
		SlowRequests:     in.slowRequests.Load(),
		ShardKills:       in.shardKills.Load(),
		RetrainFaults:    in.retrainFaults.Load(),
	}
}

// roll decides whether the site fails this time: a seeded draw under rate,
// clamped by the consecutive-failure bound.
func (in *Injector) roll(site *faultSite, rate float64) bool {
	if rate <= 0 {
		return false
	}
	seq := site.seq.Add(1)
	hit := rng.Derive(in.cfg.Seed, site.label, seq).Float64() < rate
	if hit && site.consecutive.Load() < int64(in.cfg.MaxConsecutive) {
		site.consecutive.Add(1)
		return true
	}
	site.consecutive.Store(0)
	return false
}

// delayFor returns a deterministic stall in (0, max] for the site's next
// decision, or 0 for no stall.
func (in *Injector) delayFor(site *faultSite, rate float64, max time.Duration) time.Duration {
	if rate <= 0 || max <= 0 {
		return 0
	}
	seq := site.seq.Add(1)
	r := rng.Derive(in.cfg.Seed, site.label, seq)
	if r.Float64() >= rate {
		return 0
	}
	return time.Duration(r.Float64() * float64(max))
}

var (
	errIngestFault   = errors.New("chaos: injected ingest fault")
	errSnapshotFault = errors.New("chaos: injected snapshot-rebuild fault")
	errReloadFault   = errors.New("chaos: injected reload-probe fault")
)

// Hooks returns the serve.FaultHooks wiring for the store, reload and
// request seams. Pass it in serve.Config.Faults.
func (in *Injector) Hooks() *serve.FaultHooks {
	return &serve.FaultHooks{
		IngestTests: func(n int) error {
			if in.roll(&in.ingestTestsSite, in.cfg.IngestError) {
				in.ingestFaults.Add(1)
				return serve.Transient(errIngestFault)
			}
			return nil
		},
		IngestTickets: func(n int) error {
			if in.roll(&in.ingestTicketsSite, in.cfg.IngestError) {
				in.ingestFaults.Add(1)
				return serve.Transient(errIngestFault)
			}
			return nil
		},
		SnapshotBuild: func(version uint64) error {
			if in.roll(&in.snapshotSite, in.cfg.SnapshotError) {
				in.snapshotFaults.Add(1)
				return serve.Transient(errSnapshotFault)
			}
			return nil
		},
		ReloadProbe: func() error {
			if in.roll(&in.reloadSite, in.cfg.ReloadError) {
				in.reloadFaults.Add(1)
				return serve.Transient(errReloadFault)
			}
			return nil
		},
		ShardRead: func(shard int) {
			if d := in.delayFor(&in.shardSite, in.cfg.SlowShard, in.cfg.ShardDelay); d > 0 {
				in.slowShards.Add(1)
				in.cfg.Sleep(d)
			}
		},
		Request: func(endpoint string) {
			if d := in.delayFor(&in.requestSite, in.cfg.SlowRequest, in.cfg.RequestDelay); d > 0 {
				in.slowRequests.Add(1)
				in.cfg.Sleep(d)
			}
		},
	}
}

var errRetrainFault = errors.New("chaos: injected retrain fault")

// DriftHooks returns the fault wiring for the drift loop's retrain seam.
// Pass it in drift.Config.Hooks. A hit aborts that tick's challenger
// training attempt; the loop retries on a later tick against the same
// anchored training window, so the eventual challenger is identical.
func (in *Injector) DriftHooks() *drift.FaultHooks {
	return &drift.FaultHooks{
		Retrain: func(week int) error {
			if in.roll(&in.retrainSite, in.cfg.RetrainError) {
				in.retrainFaults.Add(1)
				return fmt.Errorf("%w: week %d", errRetrainFault, week)
			}
			return nil
		},
	}
}

// errShardKill is what an unreachable shard looks like to the gateway's
// client: a failed round trip, retried like any network error.
var errShardKill = errors.New("chaos: injected shard kill")

// FleetHooks returns the fault wiring for a fleet gateway's shard-request
// seam. Pass it in fleet.Config.Hooks. Each kill fails one shard round trip
// before it leaves the client; a burst of them (bounded by MaxConsecutive)
// is a dead machine the gateway must ride through — degraded ranks, retried
// ingests — until the site clears.
func (in *Injector) FleetHooks() *fleet.FaultHooks {
	return &fleet.FaultHooks{
		ShardRequest: func(shard, route string) error {
			if in.roll(&in.shardKillSite, in.cfg.ShardKill) {
				in.shardKills.Add(1)
				return fmt.Errorf("%w: shard %s %s", errShardKill, shard, route)
			}
			return nil
		},
	}
}

// corruptWeek is the out-of-range week stamped onto corrupted records; the
// store's validation is guaranteed to reject it, so a malformed batch can
// never be half-applied.
const corruptWeek = data.Weeks

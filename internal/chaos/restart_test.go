package chaos

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/serve"
	"nevermind/internal/wal"
)

// The restart soak is the durability subsystem's kill/restart fault family:
// a store with the WAL on is driven through weeks of ingest under the
// existing chaos faults (transient ingest and snapshot-build errors), killed
// at an adversarial point — between weeks, mid-week with a torn WAL tail,
// mid-checkpoint with the newest checkpoint corrupted — recovered into a
// fresh process-equivalent store, resumed, and must converge bit-identically
// to an uninterrupted run over the same feed.

// restartStep is one ingest batch of the deterministic feed, tagged with the
// week it belongs to.
type restartStep struct {
	week    int
	tests   []serve.TestRecord
	tickets []serve.TicketRecord
}

// restartFeed builds the whole soak feed: stepsPerWeek batches for each week
// in [lo, hi], mixing test and ticket batches, overlapping line ranges so
// re-ingest after a kill genuinely overwrites cells.
func restartFeed(lo, hi, stepsPerWeek int) []restartStep {
	var steps []restartStep
	for w := lo; w <= hi; w++ {
		for k := 0; k < stepsPerWeek; k++ {
			i := w*stepsPerWeek + k
			st := restartStep{week: w}
			if k%3 == 2 {
				for j := 0; j < 5; j++ {
					st.tickets = append(st.tickets, serve.TicketRecord{
						ID:       i*100 + j,
						Line:     data.LineID((i*29 + j*13) % 600),
						Day:      data.SaturdayOf(w) - j%3,
						Category: uint8((i + j) % int(data.CatOther+1)),
					})
				}
			} else {
				for j := 0; j < 12; j++ {
					line := data.LineID((i*31 + j*17) % 600)
					f := make([]float32, data.NumBasicFeatures)
					for c := range f {
						f[c] = float32(i%50)*0.3 + float32(j) + float32(c)*0.05
					}
					st.tests = append(st.tests, serve.TestRecord{
						Line: line, Week: w, Missing: (i+j)%9 == 0, F: f,
						Profile: uint8((i + j) % len(data.Profiles)),
						DSLAM:   int32(line) % 24,
						Usage:   float32(j%4) * 0.25,
					})
				}
			}
			steps = append(steps, st)
		}
	}
	return steps
}

// ingestStep applies one step with bounded retries against injected
// transient ingest faults, returning the store version after the batch
// landed. Mirrors the pipeline's retry-on-transient contract.
func ingestStep(t *testing.T, s *serve.Store, st *restartStep) uint64 {
	t.Helper()
	for attempt := 0; ; attempt++ {
		var err error
		if st.tests != nil {
			_, err = s.IngestTests(st.tests)
		} else {
			_, err = s.IngestTickets(st.tickets)
		}
		if err == nil {
			return s.Version()
		}
		if !serve.IsTransient(err) || attempt > 10 {
			t.Fatalf("week %d ingest failed terminally: %v", st.week, err)
		}
	}
}

// runClean ingests every step into a bare store — the uninterrupted
// reference the killed runs must converge to.
func runClean(t *testing.T, steps []restartStep) *serve.Store {
	t.Helper()
	s := serve.NewStore(4)
	for i := range steps {
		ingestStep(t, s, &steps[i])
	}
	return s
}

// killPlan places the kill and shapes the damage.
type killPlan struct {
	name string
	// killAfter kills once this many steps have been ingested.
	killAfter int
	// tearTail chops bytes off the newest WAL segment after the kill —
	// the mid-ingest torn-write crash.
	tearTail bool
	// corruptCkpt flips bytes in the newest checkpoint and drops a stray
	// .tmp beside it — the mid-checkpoint crash.
	corruptCkpt bool
	// checkpointAt forces synchronous checkpoints after these step counts
	// (so the corrupt-checkpoint plan has two checkpoints to fall back
	// through).
	checkpointAt []int
}

// runKilled drives the durable store through the plan: ingest with chaos
// faults armed, kill, damage the directory, recover into a fresh store,
// resume from the first non-durable step, finish the feed. Returns the
// recovered store and the recovery stats.
func runKilled(t *testing.T, steps []restartStep, plan killPlan) (*serve.Store, serve.RecoveryStats) {
	t.Helper()
	dir := t.TempDir()
	inj := New(Config{
		Seed:        31,
		IngestError: 0.20, SnapshotError: 0.25,
		Sleep: func(time.Duration) {},
	})

	open := func() (*serve.Store, *serve.Durability) {
		s := serve.NewStore(4)
		s.SetFaults(inj.Hooks())
		d, err := serve.OpenDurability(s, nil, serve.DurabilityConfig{
			Dir:  dir,
			Sync: wal.SyncNever, // Abandon + manual damage simulate the loss
			// Version-driven checkpoints off: the plans place checkpoints
			// deterministically via d.Checkpoint().
			CheckpointEvery: -1,
			SegmentBytes:    8 << 10, // small segments: kills usually land mid-chain
			KeepCheckpoints: 2,
		})
		if err != nil {
			t.Fatalf("OpenDurability: %v", err)
		}
		return s, d
	}

	s, d := open()
	// Hammer the snapshot path while ingesting, exactly like the main soak:
	// concurrent readers must never see a torn view, recovery included.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammer := func(st *serve.Store) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if sn := st.Snapshot(); sn != nil {
				_ = sn.LinesAt(int(sn.Version) % data.Weeks)
			}
		}
	}
	wg.Add(1)
	go hammer(s)

	// versionAfter[i] is the store version once step i landed — the resume
	// cursor maps the recovered version back to the first step to re-apply.
	versionAfter := make([]uint64, len(steps))
	ckptIdx := 0
	for i := 0; i < plan.killAfter; i++ {
		versionAfter[i] = ingestStep(t, s, &steps[i])
		if ckptIdx < len(plan.checkpointAt) && i+1 == plan.checkpointAt[ckptIdx] {
			d.Checkpoint()
			ckptIdx++
		}
	}
	close(stop)
	wg.Wait()
	d.Abandon() // kill -9: no final sync, no final checkpoint

	// Inflict the plan's damage on the directory.
	if plan.tearTail {
		segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no segments to tear: %v", err)
		}
		last := segs[len(segs)-1]
		st, _ := os.Stat(last)
		if err := os.Truncate(last, st.Size()-6); err != nil {
			t.Fatal(err)
		}
	}
	if plan.corruptCkpt {
		cks, err := wal.Checkpoints(dir)
		if err != nil || len(cks) == 0 {
			t.Fatalf("no checkpoints to corrupt: %v", err)
		}
		newest := cks[len(cks)-1].Path
		b, _ := os.ReadFile(newest)
		b[len(b)/3] ^= 0xa5
		if err := os.WriteFile(newest, b, 0o644); err != nil {
			t.Fatal(err)
		}
		// A crash mid-checkpoint also strands a partial .tmp; recovery must
		// ignore it and pruning must sweep it.
		if err := os.WriteFile(newest+".tmp", b[:len(b)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Restart: recover into a fresh store and resume. The resume cursor
	// re-applies every step whose recorded version the recovery didn't
	// reach — re-ingest is idempotent (cells overwrite, tickets dedup), so
	// overlap is harmless and versions line up again by construction.
	s2, d2 := open()
	defer d2.Close()
	rec := d2.Recovery()
	resume := plan.killAfter
	for i := 0; i < plan.killAfter; i++ {
		if versionAfter[i] > rec.Version {
			resume = i
			break
		}
	}
	stop2 := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop2:
				return
			default:
			}
			if sn := s2.Snapshot(); sn != nil {
				_ = sn.LinesAt(int(sn.Version) % data.Weeks)
			}
		}
	}()
	for i := resume; i < len(steps); i++ {
		ingestStep(t, s2, &steps[i])
	}
	close(stop2)
	wg.Wait()
	return s2, rec
}

// assertStoreContentEqual compares two stores through their snapshots,
// ignoring the per-store generation salt: a restarted store is a different
// Store instance, so generations differ while every served byte must not.
func assertStoreContentEqual(t *testing.T, name string, ref, got *serve.Store) {
	t.Helper()
	if ref.Version() != got.Version() {
		t.Fatalf("%s: version diverged: reference %d, recovered %d", name, ref.Version(), got.Version())
	}
	if ref.LatestWeek() != got.LatestWeek() || ref.GridLines() != got.GridLines() || ref.NumLines() != got.NumLines() {
		t.Fatalf("%s: watermarks diverged: week %d/%d gridlines %d/%d lines %d/%d", name,
			ref.LatestWeek(), got.LatestWeek(), ref.GridLines(), got.GridLines(), ref.NumLines(), got.NumLines())
	}
	a, b := ref.Snapshot(), got.Snapshot()
	if a == nil || b == nil {
		t.Fatalf("%s: nil snapshot (ref %v, got %v)", name, a == nil, b == nil)
	}
	if a.Version != b.Version {
		t.Fatalf("%s: snapshot versions diverged: %d vs %d", name, a.Version, b.Version)
	}
	if a.DS.NumLines != b.DS.NumLines || a.DS.NumDSLAMs != b.DS.NumDSLAMs {
		t.Fatalf("%s: snapshot shape diverged: lines %d/%d dslams %d/%d", name,
			a.DS.NumLines, b.DS.NumLines, a.DS.NumDSLAMs, b.DS.NumDSLAMs)
	}
	if !reflect.DeepEqual(a.Lines, b.Lines) {
		t.Fatalf("%s: line sets diverged", name)
	}
	if !reflect.DeepEqual(a.DS.Tickets, b.DS.Tickets) {
		t.Fatalf("%s: tickets diverged: %d vs %d", name, len(a.DS.Tickets), len(b.DS.Tickets))
	}
	if !reflect.DeepEqual(a.DS.ProfileOf, b.DS.ProfileOf) ||
		!reflect.DeepEqual(a.DS.DSLAMOf, b.DS.DSLAMOf) ||
		!reflect.DeepEqual(a.DS.UsageOf, b.DS.UsageOf) {
		t.Fatalf("%s: line attributes diverged", name)
	}
	for w := 0; w < data.Weeks; w++ {
		if !reflect.DeepEqual(a.LinesAt(w), b.LinesAt(w)) {
			t.Fatalf("%s: week %d line lists diverged", name, w)
		}
		for l := 0; l < a.DS.NumLines; l++ {
			if a.Present[w][l] != b.Present[w][l] {
				t.Fatalf("%s: presence diverged at week %d line %d", name, w, l)
			}
			if *a.DS.At(data.LineID(l), w) != *b.DS.At(data.LineID(l), w) {
				t.Fatalf("%s: grid cell diverged at week %d line %d", name, w, l)
			}
		}
	}
}

// TestRestartSoak runs every kill plan against the same feed and requires
// bit-identical convergence with the uninterrupted reference, plus proof
// that each plan's adversary actually fired (records replayed, bytes
// truncated, checkpoints skipped) — a plan whose damage never engaged the
// recovery path would pass vacuously otherwise.
func TestRestartSoak(t *testing.T) {
	const lo, hi, perWeek = 40, 47, 4
	steps := restartFeed(lo, hi, perWeek)
	ref := runClean(t, steps)

	mid := len(steps) / 2
	plans := []killPlan{
		{
			// Clean kill at a week boundary: everything acked is durable,
			// recovery replays the whole WAL, resume continues with the
			// next week.
			name:      "between-weeks",
			killAfter: (hi - lo) / 2 * perWeek,
		},
		{
			// Kill mid-week with a torn final record: the tail batch is
			// lost, recovery truncates it, resume re-ingests it.
			name:      "mid-ingest-torn-tail",
			killAfter: mid + 1,
			tearTail:  true,
		},
		{
			// Kill mid-checkpoint: newest checkpoint corrupt plus a stray
			// .tmp; recovery falls back to the previous checkpoint and the
			// WAL tail past it (which truncation must have preserved).
			name:         "mid-checkpoint-corrupt",
			killAfter:    mid + 2,
			corruptCkpt:  true,
			checkpointAt: []int{mid / 2, mid},
		},
	}
	for _, plan := range plans {
		plan := plan
		t.Run(plan.name, func(t *testing.T) {
			got, rec := runKilled(t, steps, plan)
			assertStoreContentEqual(t, plan.name, ref, got)
			if rec.ReplayedRecords == 0 && rec.CheckpointVersion == 0 {
				t.Fatalf("recovery recovered nothing: %+v", rec)
			}
			if plan.tearTail && rec.TruncatedBytes == 0 {
				t.Fatalf("torn-tail plan saw no truncation: %+v", rec)
			}
			if plan.corruptCkpt {
				if rec.SkippedCheckpoints == 0 {
					t.Fatalf("corrupt-checkpoint plan skipped no checkpoints: %+v", rec)
				}
				if rec.CheckpointVersion == 0 {
					t.Fatalf("corrupt-checkpoint plan found no fallback checkpoint: %+v", rec)
				}
			}
		})
	}
}

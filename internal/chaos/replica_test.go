package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nevermind/internal/replica"
	"nevermind/internal/serve"
	"nevermind/internal/wal"
)

// The replication soak is the leader/follower fault family: a follower killed
// and restarted mid-catch-up, leader retention pruning racing a follower that
// fell asleep, and a stream transport that tears and flips bytes. In every
// case the follower must converge bit-identically to the leader (the same
// assertStoreContentEqual the restart soak uses) or re-bootstrap from a fresh
// checkpoint — and a store handed to SwapStore must never be behind one
// readers already saw, nor torn.

// replLeader is a leader reduced to what replication needs: a durable store
// with the source mounted over real HTTP. No models, no serving handlers —
// the follower only ever talks to /v1/repl/.
type replLeader struct {
	st  *serve.Store
	d   *serve.Durability
	src *replica.Source
	ts  *httptest.Server
}

func newReplLeader(t *testing.T, ttl time.Duration, maxStream int) *replLeader {
	t.Helper()
	dir := t.TempDir()
	st := serve.NewStore(4)
	d, err := serve.OpenDurability(st, nil, serve.DurabilityConfig{
		Dir:             dir,
		Sync:            wal.SyncNever,
		CheckpointEvery: -1,
		SegmentBytes:    8 << 10, // small segments so pruning bites quickly
		KeepCheckpoints: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := replica.NewSource(replica.SourceConfig{
		Dir:              dir,
		LastVersion:      d.LogVersion,
		RetentionTTL:     ttl,
		MaxStreamRecords: maxStream,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SetOnAppend(src.Wake)
	d.SetRetention(src.Retain)
	ts := httptest.NewServer(src.Handler())
	t.Cleanup(func() { ts.Close(); d.Abandon() })
	return &replLeader{st: st, d: d, src: src, ts: ts}
}

// pubTracker records every store the follower publishes and enforces the
// swap contract: a published store never trails one readers already saw.
type pubTracker struct {
	t  *testing.T
	mu sync.Mutex
	st []*serve.Store
}

func (p *pubTracker) swap(s *serve.Store) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.st); n > 0 && s.Version() < p.st[n-1].Version() {
		p.t.Errorf("published store went backwards: %d after %d", s.Version(), p.st[n-1].Version())
	}
	p.st = append(p.st, s)
}

func (p *pubTracker) last() *serve.Store {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.st) == 0 {
		return nil
	}
	return p.st[len(p.st)-1]
}

func (p *pubTracker) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.st)
}

// waitApplied spins until the follower's applied position reaches want.
func waitApplied(t *testing.T, fol *replica.Follower, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for fol.Status().Applied != want {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck: status %+v, want applied %d", fol.Status(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// killRT lets a fixed number of requests through, then fails every later one
// at the transport — the deterministic stand-in for kill -9 on the follower:
// the process loses its in-flight catch-up and all in-memory state.
type killRT struct {
	inner   http.RoundTripper
	mu      sync.Mutex
	allowed int
}

func (k *killRT) RoundTrip(req *http.Request) (*http.Response, error) {
	k.mu.Lock()
	ok := k.allowed > 0
	if ok {
		k.allowed--
	}
	k.mu.Unlock()
	if !ok {
		return nil, errors.New("chaos: follower killed")
	}
	return k.inner.RoundTrip(req)
}

// TestReplicaKillRestartMidCatchup kills a follower partway through a
// multi-poll catch-up (the leader's stream cap makes one poll insufficient)
// and restarts it as a fresh process. The dead follower must never have
// published a store; the restarted one must converge bit-identically.
func TestReplicaKillRestartMidCatchup(t *testing.T) {
	steps := restartFeed(40, 47, 6)
	leader := newReplLeader(t, 5*time.Minute, 5)

	// Checkpoint early so catch-up is checkpoint + a long WAL tail, then pile
	// on: 24 versions against a 5-record stream cap means >= 4 polls to boot.
	for i := 0; i < 8; i++ {
		ingestStep(t, leader.st, &steps[i])
	}
	leader.d.Checkpoint()
	for i := 8; i < 24; i++ {
		ingestStep(t, leader.st, &steps[i])
	}

	// First follower: killed after the checkpoint download plus two stream
	// polls — mid-catch-up by construction.
	tracker1 := &pubTracker{t: t}
	fol1, err := replica.NewFollower(replica.FollowerConfig{
		Leader: leader.ts.URL, ID: "doomed", Shards: 4,
		SwapStore: tracker1.swap,
		Client:    &http.Client{Transport: &killRT{inner: http.DefaultTransport, allowed: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fol1.Bootstrap(t.Context()); err == nil {
		t.Fatal("killed follower bootstrapped anyway")
	}
	if n := tracker1.count(); n != 0 {
		t.Fatalf("killed follower published %d stores; a partial catch-up must publish nothing", n)
	}

	// Restart: a fresh follower (fresh process: no state carries over) boots
	// from the same leader and then tails it live through the rest of the feed.
	tracker2 := &pubTracker{t: t}
	fol2, err := replica.NewFollower(replica.FollowerConfig{
		Leader: leader.ts.URL, ID: "restarted", Shards: 4,
		SwapStore: tracker2.swap,
		PollWait:  200 * time.Millisecond,
		RetryBase: time.Millisecond, RetryMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fol2.Bootstrap(t.Context()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(t.Context())
	done := make(chan struct{})
	go func() { defer close(done); fol2.Run(ctx) }()
	for i := 24; i < len(steps); i++ {
		ingestStep(t, leader.st, &steps[i])
	}
	waitApplied(t, fol2, leader.st.Version())
	cancel()
	<-done

	if got := fol2.Bootstraps(); got != 1 {
		t.Fatalf("restarted follower bootstrapped %d times, want 1", got)
	}
	assertStoreContentEqual(t, "kill-restart", runClean(t, steps), tracker2.last())
}

// TestReplicaPruningRacesSlowFollower lets a follower's retention claim lapse
// while the leader checkpoints and prunes past its position. The next poll
// must get 410 Gone and the follower must re-bootstrap from a fresh
// checkpoint — never resume from a gapped WAL — and still converge
// bit-identically.
func TestReplicaPruningRacesSlowFollower(t *testing.T) {
	steps := restartFeed(40, 51, 15)
	leader := newReplLeader(t, 40*time.Millisecond, 0)

	cursor := 0
	ingestN := func(n int) {
		for i := 0; i < n && cursor < len(steps); i++ {
			ingestStep(t, leader.st, &steps[cursor])
			cursor++
		}
	}

	ingestN(8)
	leader.d.Checkpoint()

	tracker := &pubTracker{t: t}
	fol, err := replica.NewFollower(replica.FollowerConfig{
		Leader: leader.ts.URL, ID: "slow", Shards: 4,
		SwapStore: tracker.swap,
		PollWait:  50 * time.Millisecond,
		RetryBase: time.Millisecond, RetryMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.Bootstrap(t.Context()); err != nil {
		t.Fatal(err)
	}
	v0 := tracker.last().Version()

	// The follower sleeps past the retention TTL; the leader keeps ingesting
	// and checkpointing until the WAL chain no longer reaches v0.
	time.Sleep(80 * time.Millisecond)
	probe := errors.New("probe")
	gapped := false
	for i := 0; i < 40 && !gapped && cursor < len(steps); i++ {
		ingestN(4)
		leader.d.Checkpoint()
		_, err := wal.Replay(leader.d.Dir(), v0, func(*wal.Record) error { return probe })
		gapped = errors.Is(err, wal.ErrReplayGap)
	}
	if !gapped {
		t.Fatalf("pruning never gapped the WAL past the follower (v0 %d, leader %d)", v0, leader.st.Version())
	}

	ctx, cancel := context.WithCancel(t.Context())
	done := make(chan struct{})
	go func() { defer close(done); fol.Run(ctx) }()
	deadline := time.Now().Add(30 * time.Second)
	for fol.Status().Applied != leader.st.Version() || fol.Bootstraps() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no 410-triggered convergence: status %+v bootstraps %d leader %d",
				fol.Status(), fol.Bootstraps(), leader.st.Version())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	<-done

	assertStoreContentEqual(t, "pruned", runClean(t, steps[:cursor]), tracker.last())
}

// faultRT mangles replication stream responses: truncation at a random byte
// (a torn read) or a single bit flip (corruption), seeded and serialized so
// runs replay. Checkpoint downloads pass clean — the stream decoder is the
// target here; corrupt checkpoints have their own walk-back test.
type faultRT struct {
	inner http.RoundTripper

	mu      sync.Mutex
	rng     *rand.Rand
	mangled int
}

func (f *faultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := f.inner.RoundTrip(req)
	if err != nil || !strings.HasSuffix(req.URL.Path, "/v1/repl/wal") {
		return resp, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	f.mu.Lock()
	switch {
	case len(body) > 0 && f.rng.Float64() < 0.25:
		body = body[:f.rng.Intn(len(body))]
		f.mangled++
	case len(body) > 0 && f.rng.Float64() < 0.25:
		body = append([]byte(nil), body...)
		body[f.rng.Intn(len(body))] ^= 1 << f.rng.Intn(8)
		f.mangled++
	}
	f.mu.Unlock()
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Del("Content-Length")
	return resp, nil
}

// TestReplicaCorruptStream tails a live leader through a transport that tears
// and flips stream bytes. CRC framing means every applied prefix is valid: the
// follower resumes from its position after each mangled read and still
// converges bit-identically, while concurrent readers never observe the store
// going backwards.
func TestReplicaCorruptStream(t *testing.T) {
	steps := restartFeed(40, 51, 6)
	leader := newReplLeader(t, 5*time.Minute, 5)

	for i := 0; i < 8; i++ {
		ingestStep(t, leader.st, &steps[i])
	}
	leader.d.Checkpoint()

	rt := &faultRT{inner: http.DefaultTransport, rng: rand.New(rand.NewSource(43))}
	tracker := &pubTracker{t: t}
	fol, err := replica.NewFollower(replica.FollowerConfig{
		Leader: leader.ts.URL, ID: "mangled", Shards: 4,
		SwapStore: tracker.swap,
		Client:    &http.Client{Transport: rt},
		PollWait:  50 * time.Millisecond,
		RetryBase: time.Millisecond, RetryMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A mangled read during the bootstrap catch-up fails the boot (the daemon
	// would exit); keep restarting until one gets through, as an operator's
	// supervisor would.
	boot := func() error {
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			if err = fol.Bootstrap(t.Context()); err == nil {
				return nil
			}
		}
		return err
	}
	if err := boot(); err != nil {
		t.Fatal(err)
	}

	// Readers hammer the published store throughout: snapshot versions must
	// never regress, across in-place applies and swaps alike.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s := tracker.last(); s != nil {
				if sn := s.Snapshot(); sn != nil {
					if sn.Version < prev {
						t.Errorf("reader saw the store go backwards: %d after %d", sn.Version, prev)
						return
					}
					prev = sn.Version
				}
			}
		}
	}()

	ctx, cancel := context.WithCancel(t.Context())
	done := make(chan struct{})
	go func() { defer close(done); fol.Run(ctx) }()
	for i := 8; i < len(steps); i++ {
		ingestStep(t, leader.st, &steps[i])
	}
	waitApplied(t, fol, leader.st.Version())
	cancel()
	<-done
	close(stop)
	wg.Wait()

	rt.mu.Lock()
	mangled := rt.mangled
	rt.mu.Unlock()
	if mangled == 0 {
		t.Fatal("fault transport mangled nothing; the soak proved nothing")
	}
	t.Logf("converged through %d mangled stream reads", mangled)
	assertStoreContentEqual(t, "corrupt-stream", runClean(t, steps), tracker.last())
}

package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/obs"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
)

// soakConfig parameterises one soak run; the long-mode test reuses the same
// runner over more weeks and several fault seeds.
type soakConfig struct {
	chaos      *Config // nil = clean run
	loWeek     int
	hiWeek     int
	hammers    int // concurrent API/snapshot readers during the run
	retrySeed  uint64
	maxAttempt int
}

// soakResult is everything a run serves, captured for replay comparison.
type soakResult struct {
	reports  []serve.WeekReport
	rankBody string // final /v1/rank JSON, bit-for-bit
	stats    Stats  // injected faults (zero for clean runs)

	// Observability readout, captured after the run quiesced (pipeline done,
	// hammers joined): the tracer's flight recorder, the registry-backed
	// retry counters, and the rendered /metrics text.
	trace        obs.TraceSnapshot
	retriesTotal int64
	retriesByOp  map[string]int64
	metricsText  string
}

// runSoak drives the full serving stack — store, snapshot cache, HTTP API,
// pipeline, ATDS queue, hot reload — through the configured weeks, with the
// chaos layer armed when cfg.chaos is set. Hammer goroutines exercise the
// read path the whole time and fail the test on any torn snapshot or
// unhealthy /healthz.
func runSoak(t *testing.T, cfg soakConfig) soakResult {
	t.Helper()
	ds, pred0 := fixture(t)

	// Each run loads its own predictor from disk so runs never share encode
	// caches, and so the reload path (probed under injected faults) has a
	// file to re-read.
	dir := t.TempDir()
	predPath := filepath.Join(dir, "pred.gob.gz")
	if err := pred0.Save(predPath); err != nil {
		t.Fatal(err)
	}
	pred, err := core.LoadPredictor(predPath)
	if err != nil {
		t.Fatal(err)
	}

	var inj *Injector
	var faults *serve.FaultHooks
	if cfg.chaos != nil {
		inj = New(*cfg.chaos)
		faults = inj.Hooks()
	}
	srv, err := serve.New(serve.Config{
		Predictor:     pred,
		PredictorPath: predPath,
		Shards:        4,
		MaxInflight:   64,
		Faults:        faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	src, err := sim.NewSource(ds, cfg.loWeek, cfg.hiWeek)
	if err != nil {
		t.Fatal(err)
	}
	var feed serve.Source = serve.SimFeed(src)
	if inj != nil {
		feed = inj.WrapSource(feed)
	}

	var res soakResult
	pl, err := serve.NewPipeline(srv, serve.PipelineConfig{
		Source: feed,
		Retry: serve.RetryConfig{
			MaxAttempts: cfg.maxAttempt,
			Seed:        cfg.retrySeed,
		},
		Sleep:  func(time.Duration) {},
		OnWeek: func(r serve.WeekReport) { res.reports = append(res.reports, r) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Hammers: concurrent readers that must never see a torn snapshot, an
	// unhealthy health check, or a malformed rank response — fault storms
	// included. 503 is a legal degraded answer for the data plane (empty
	// store, shed, stale), never for /healthz.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for h := 0; h < cfg.hammers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					resp, err := client.Get(ts.URL + "/healthz")
					if err != nil {
						t.Errorf("hammer %d: healthz: %v", h, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("hammer %d: healthz answered %d during faults", h, resp.StatusCode)
						return
					}
				case 1:
					resp, err := client.Get(ts.URL + "/v1/rank?n=5")
					if err != nil {
						t.Errorf("hammer %d: rank: %v", h, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK, http.StatusServiceUnavailable:
						var v map[string]json.RawMessage
						if err := json.Unmarshal(body, &v); err != nil {
							t.Errorf("hammer %d: rank returned unparseable body %q", h, body)
							return
						}
					default:
						t.Errorf("hammer %d: rank answered %d: %s", h, resp.StatusCode, body)
						return
					}
				case 2:
					sn := srv.Store().Snapshot()
					if sn == nil {
						continue
					}
					if sn.DS.Generation != srv.Store().GenerationOf(sn.Version) {
						t.Errorf("hammer %d: torn snapshot: generation %d != salted version %d", h, sn.DS.Generation, sn.Version)
						return
					}
					if err := sn.DS.Grid.Validate(sn.DS.NumLines); err != nil {
						t.Errorf("hammer %d: torn snapshot: %v", h, err)
						return
					}
				}
			}
		}(h)
	}
	// A reload prober: hot reloads race the pipeline and the hammers, with
	// the probe failing at the injected rate. Either outcome is legal; a
	// failure must leave the generation serving (the hammers verify that by
	// construction — scoring never breaks).
	if cfg.chaos != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Post(ts.URL+"/v1/reload", "application/json", nil)
				if err != nil {
					t.Errorf("reload prober: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
					t.Errorf("reload prober: unexpected status %d", resp.StatusCode)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	for {
		ok, err := pl.Step()
		if err != nil {
			t.Fatalf("pipeline died mid-soak: %v", err)
		}
		if !ok {
			break
		}
	}
	close(stop)
	wg.Wait()

	// The delta/full equivalence property, checked on the chaotic end state:
	// whatever mix of delta applies and full rebuilds (including failed ones)
	// got the store here, a from-scratch rebuild must reproduce the exact
	// same snapshot. Builds can still fail under injected faults, so loop
	// until a fresh one lands (the injector's fault budget is bounded).
	freshSnapshot := func(tag string) *serve.Snapshot {
		for i := 0; i < 1000; i++ {
			if sn := srv.Store().Snapshot(); sn != nil && sn.Version == srv.Store().Version() {
				return sn
			}
		}
		t.Fatalf("%s: store never produced a fresh snapshot", tag)
		return nil
	}
	incSn := freshSnapshot("pre-reset")
	srv.Store().ResetSnapshotCache()
	fullSn := freshSnapshot("post-reset")
	assertSnapshotsEquivalent(t, incSn, fullSn)

	// Final ranking over the last week, bit-for-bit.
	resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/rank?week=%d&n=25", cfg.hiWeek))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final rank: %d %s", resp.StatusCode, body)
	}
	res.rankBody = string(body)
	if inj != nil {
		res.stats = inj.Stats()
	}

	res.trace = srv.Tracer().Snapshot()
	// The help strings are ignored on lookup: the server registered these
	// families at boot, get-or-create just hands the live values back.
	res.retriesTotal = srv.Registry().Counter("nevermind_pipeline_retries_total", "").Value()
	res.retriesByOp = srv.Registry().CounterVec("nevermind_pipeline_retries_by_op_total", "", "op").Values()
	var mb strings.Builder
	if err := srv.Registry().WritePrometheus(&mb); err != nil {
		t.Fatal(err)
	}
	res.metricsText = mb.String()
	return res
}

// TestChaosSoak is the tier-1 soak: the full serving stack rides through
// every fault mode at >= 10% rates for a stretch of weeks, and the run must
// converge to the exact state of a clean replay — same weeks dispatched into
// ATDS exactly once, same per-week outcome stats, bit-identical final
// ranking — while concurrent readers never observe a torn snapshot or a
// failed health check.
func TestChaosSoak(t *testing.T) {
	lo, hi := 40, 47
	clean := runSoak(t, soakConfig{
		loWeek: lo, hiWeek: hi, hammers: 0, retrySeed: 17, maxAttempt: 20,
	})
	if len(clean.reports) != hi-lo+1 {
		t.Fatalf("clean run covered %d weeks, want %d", len(clean.reports), hi-lo+1)
	}

	chaotic := runSoak(t, soakConfig{
		chaos: &Config{
			Seed:        25,
			SourceError: 0.15, PartialBatch: 0.15, MalformedBatch: 0.15,
			IngestError: 0.20, SnapshotError: 0.25, ReloadError: 0.50,
			SlowShard: 0.30, ShardDelay: time.Millisecond,
			SlowRequest: 0.30, RequestDelay: time.Millisecond,
			Sleep: func(time.Duration) {},
		},
		loWeek: lo, hiWeek: hi, hammers: 3, retrySeed: 17, maxAttempt: 20,
	})

	// Exactly-once, in-order ATDS dispatch: every week appears once.
	if len(chaotic.reports) != hi-lo+1 {
		t.Fatalf("chaos run covered %d weeks, want %d", len(chaotic.reports), hi-lo+1)
	}
	for i, r := range chaotic.reports {
		if r.Week != lo+i {
			t.Fatalf("chaos run dispatched weeks out of order or twice: %+v", chaotic.reports)
		}
	}

	// Once faults clear each week, the served state is the clean state: the
	// ingested volumes, submissions and ATDS outcome stats match exactly.
	retries := 0
	for i := range chaotic.reports {
		c, f := clean.reports[i], chaotic.reports[i]
		retries += f.Retries
		if c.Week != f.Week || c.IngestedTests != f.IngestedTests || c.IngestedTickets != f.IngestedTickets ||
			c.Submitted != f.Submitted || c.Pending != f.Pending || c.Stats != f.Stats {
			t.Fatalf("week %d diverged from clean replay:\nclean %+v\nchaos %+v", c.Week, c, f)
		}
	}

	// The final ranking is bit-for-bit the clean ranking.
	if chaotic.rankBody != clean.rankBody {
		t.Fatalf("final ranking diverged from clean replay:\nclean %s\nchaos %s", clean.rankBody, chaotic.rankBody)
	}

	// The adversary actually showed up: every armed fault family fired, and
	// the pipeline had to retry through faults to get here.
	st := chaotic.stats
	if st.SourceErrors == 0 || st.PartialBatches == 0 || st.MalformedBatches == 0 {
		t.Fatalf("source fault modes missing from the run: %+v", st)
	}
	if st.IngestFaults == 0 || st.SnapshotFaults == 0 {
		t.Fatalf("store fault modes missing from the run: %+v", st)
	}
	if retries == 0 {
		t.Fatal("pipeline reported zero retries through a fault storm")
	}

	// Observability invariants after convergence. Both runs: no stage span
	// leaked (every span started was ended), the registry's retry counter
	// agrees exactly with the per-week reports, the by-op breakdown sums to
	// the total, and the degraded gauge is back at 0 (the last snapshot
	// served was fresh).
	for _, run := range []struct {
		name string
		res  soakResult
	}{{"clean", clean}, {"chaos", chaotic}} {
		tr := run.res.trace
		if tr.Started == 0 || tr.Started != tr.Finished || tr.Active != 0 {
			t.Fatalf("%s run leaked stage spans: started=%d finished=%d active=%d",
				run.name, tr.Started, tr.Finished, tr.Active)
		}
		reported := 0
		for _, r := range run.res.reports {
			reported += r.Retries
		}
		if run.res.retriesTotal != int64(reported) {
			t.Fatalf("%s run: retry metric %d != %d retries in week reports",
				run.name, run.res.retriesTotal, reported)
		}
		var byOp int64
		for _, v := range run.res.retriesByOp {
			byOp += v
		}
		if byOp != run.res.retriesTotal {
			t.Fatalf("%s run: per-op retries %v sum to %d, total counter says %d",
				run.name, run.res.retriesByOp, byOp, run.res.retriesTotal)
		}
		if !strings.Contains(run.res.metricsText, "\nnevermind_degraded 0\n") {
			t.Fatalf("%s run: degraded gauge did not return to 0 after convergence", run.name)
		}
	}

	// Chaos run only: retries reconcile against the faults actually injected.
	// Source, batch and ingest faults each force exactly one pipeline retry.
	// A snapshot fault forces at most one: the hammers also trigger rebuilds,
	// so some injected build failures burn on reads the pipeline never sees.
	lower := st.SourceErrors + st.PartialBatches + st.MalformedBatches + st.IngestFaults
	upper := lower + st.SnapshotFaults
	if rt := chaotic.retriesTotal; rt < lower || rt > upper {
		t.Fatalf("retry accounting: %d retries recorded, want within [%d, %d] for faults %+v",
			rt, lower, upper, st)
	}
	// Every stale-snapshot attempt left one degraded span in the recorder,
	// and each such attempt is one snapshot retry — the ring is big enough
	// that nothing was evicted, so the counts must agree exactly.
	if chaotic.trace.Dropped != 0 {
		t.Fatalf("soak overflowed the trace ring (%d dropped); grow the capacity", chaotic.trace.Dropped)
	}
	var degraded int64
	for _, sp := range chaotic.trace.Spans {
		if sp.Degraded {
			degraded++
		}
	}
	if degraded != chaotic.retriesByOp["snapshot"] {
		t.Fatalf("degraded spans (%d) != snapshot retries (%d)", degraded, chaotic.retriesByOp["snapshot"])
	}

	t.Logf("soak: %d injected faults (%+v), %d pipeline retries (%v), %d spans (%d degraded)",
		st.Total(), st, retries, chaotic.retriesByOp, chaotic.trace.Finished, degraded)
}

// assertSnapshotsEquivalent deep-compares two snapshots through the public
// surface the serving path consumes: grid cells, presence, per-week line
// lists, tickets and line attributes must match exactly — the delta-applied
// and from-scratch representations of one store state are interchangeable.
func assertSnapshotsEquivalent(t *testing.T, a, b *serve.Snapshot) {
	t.Helper()
	if a.Version != b.Version || a.DS.Generation != b.DS.Generation {
		t.Fatalf("snapshot identity diverged: version %d/%d generation %d/%d",
			a.Version, b.Version, a.DS.Generation, b.DS.Generation)
	}
	if a.DS.NumLines != b.DS.NumLines || a.DS.NumDSLAMs != b.DS.NumDSLAMs {
		t.Fatalf("snapshot shape diverged: lines %d/%d dslams %d/%d",
			a.DS.NumLines, b.DS.NumLines, a.DS.NumDSLAMs, b.DS.NumDSLAMs)
	}
	if !reflect.DeepEqual(a.Lines, b.Lines) {
		t.Fatal("line sets diverged between delta-applied and full snapshots")
	}
	if !reflect.DeepEqual(a.DS.Tickets, b.DS.Tickets) {
		t.Fatalf("tickets diverged: %d vs %d", len(a.DS.Tickets), len(b.DS.Tickets))
	}
	if !reflect.DeepEqual(a.DS.ProfileOf, b.DS.ProfileOf) ||
		!reflect.DeepEqual(a.DS.DSLAMOf, b.DS.DSLAMOf) ||
		!reflect.DeepEqual(a.DS.UsageOf, b.DS.UsageOf) {
		t.Fatal("line attributes diverged between delta-applied and full snapshots")
	}
	for w := 0; w < data.Weeks; w++ {
		if !reflect.DeepEqual(a.LinesAt(w), b.LinesAt(w)) {
			t.Fatalf("week %d: present-line lists diverged", w)
		}
		for l := 0; l < a.DS.NumLines; l++ {
			if a.Present[w][l] != b.Present[w][l] {
				t.Fatalf("presence diverged at week %d line %d", w, l)
			}
			if *a.DS.At(data.LineID(l), w) != *b.DS.At(data.LineID(l), w) {
				t.Fatalf("grid cell diverged at week %d line %d", w, l)
			}
		}
	}
}

//go:build soak

package chaos

import (
	"fmt"
	"testing"
	"time"
)

// TestChaosSoakLong is the extended soak, excluded from tier-1 by the
// `soak` build tag (run via `make chaos-soak` or
// `go test -tags soak ./internal/chaos -run TestChaosSoakLong`).
//
// It drives the pipeline over the full remaining simulated year under
// several independent fault seeds and a harsher fault mix than the tier-1
// soak, with more concurrent readers. Every seed must independently
// converge to the same clean replay: identical per-week ATDS outcomes and a
// bit-identical final ranking. A seed that converges differently — or a
// reader that catches a torn snapshot anywhere in hours of simulated
// operation — fails the run.
func TestChaosSoakLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak skipped in -short mode")
	}
	lo, hi := 40, 51 // the whole post-training year
	clean := runSoak(t, soakConfig{
		loWeek: lo, hiWeek: hi, hammers: 0, retrySeed: 17, maxAttempt: 24,
	})
	if len(clean.reports) != hi-lo+1 {
		t.Fatalf("clean run covered %d weeks, want %d", len(clean.reports), hi-lo+1)
	}

	for _, seed := range []uint64{101, 202, 303, 404, 505} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			chaotic := runSoak(t, soakConfig{
				chaos: &Config{
					Seed:        seed,
					SourceError: 0.20, PartialBatch: 0.20, MalformedBatch: 0.20,
					IngestError: 0.30, SnapshotError: 0.35, ReloadError: 0.50,
					SlowShard: 0.50, ShardDelay: time.Millisecond,
					SlowRequest: 0.50, RequestDelay: time.Millisecond,
					Sleep: func(time.Duration) {},
				},
				loWeek: lo, hiWeek: hi, hammers: 8, retrySeed: seed, maxAttempt: 24,
			})
			if len(chaotic.reports) != len(clean.reports) {
				t.Fatalf("seed %d: %d weeks dispatched, want %d", seed, len(chaotic.reports), len(clean.reports))
			}
			for i := range chaotic.reports {
				c, f := clean.reports[i], chaotic.reports[i]
				if c.Week != f.Week || c.IngestedTests != f.IngestedTests ||
					c.IngestedTickets != f.IngestedTickets || c.Submitted != f.Submitted ||
					c.Pending != f.Pending || c.Stats != f.Stats {
					t.Fatalf("seed %d week %d diverged:\nclean %+v\nchaos %+v", seed, c.Week, c, f)
				}
			}
			if chaotic.rankBody != clean.rankBody {
				t.Fatalf("seed %d: final ranking diverged from clean replay", seed)
			}
			if chaotic.stats.Total() == 0 {
				t.Fatalf("seed %d injected nothing", seed)
			}
			t.Logf("seed %d: %d injected faults, converged", seed, chaotic.stats.Total())
		})
	}
}

package chaos

import (
	"errors"
	"fmt"

	"nevermind/internal/data"
	"nevermind/internal/rng"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
)

var (
	errPullFault   = errors.New("chaos: injected feed outage")
	errPartialPull = errors.New("chaos: partial delivery (truncated read)")
)

// Source wraps a pipeline feed with the three source fault modes. It keeps
// the re-delivery contract serve.Source documents: the underlying stream is
// consumed one week at a time, and a week is held until it has been
// delivered cleanly — a pull error, a partial delivery, or a malformed
// batch all leave the week pending so the pipeline's retry re-pulls it.
//
// Decisions derive from (seed, week, attempt), so the fault schedule for a
// given week is independent of every other week and of how many retries any
// previous week needed.
type Source struct {
	in    *Injector
	inner serve.Source
	cur   *sim.Batch // week pulled from inner but not yet delivered clean
	tries int        // delivery attempts for cur, including this one
}

// WrapSource interposes the injector's source fault modes on a feed.
func (in *Injector) WrapSource(inner serve.Source) *Source {
	return &Source{in: in, inner: inner}
}

// Remaining counts the pending (pulled but not cleanly delivered) week.
func (s *Source) Remaining() int {
	n := s.inner.Remaining()
	if s.cur != nil {
		n++
	}
	return n
}

// Next delivers the pending week's next attempt, pulling a fresh week from
// the wrapped feed when none is pending.
func (s *Source) Next() (sim.Batch, bool, error) {
	if s.cur == nil {
		b, ok, err := s.inner.Next()
		if !ok || err != nil {
			return b, ok, err
		}
		s.cur = &b
		s.tries = 0
	}
	s.tries++
	cfg := &s.in.cfg
	if s.tries <= cfg.MaxConsecutive {
		r := rng.Derive(cfg.Seed, siteSource, uint64(s.cur.Week), uint64(s.tries))
		x := r.Float64()
		switch {
		case x < cfg.SourceError:
			s.in.srcErrs.Add(1)
			return sim.Batch{}, true, serve.Transient(fmt.Errorf("%w: week %d", errPullFault, s.cur.Week))
		case x < cfg.SourceError+cfg.PartialBatch:
			s.in.partials.Add(1)
			return truncate(s.cur, r), true,
				serve.Transient(fmt.Errorf("%w: week %d", errPartialPull, s.cur.Week))
		case x < cfg.SourceError+cfg.PartialBatch+cfg.MalformedBatch:
			s.in.malformed.Add(1)
			return corrupt(s.cur, r), true, nil // silent: only validation catches it
		}
	}
	b := *s.cur
	s.cur = nil
	return b, true, nil
}

// truncate returns a shallow copy delivering only a prefix of the week's
// records — the shape of a connection cut mid-transfer.
func truncate(b *sim.Batch, r *rng.RNG) sim.Batch {
	out := *b
	if n := len(b.Tests); n > 0 {
		out.Tests = b.Tests[:r.Intn(n)]
	}
	if n := len(b.Tickets); n > 0 {
		out.Tickets = b.Tickets[:r.Intn(n)]
	}
	return out
}

// corrupt returns a copy with a few records stamped out of range, so store
// validation rejects the batch atomically. The original stays clean for the
// eventual good delivery.
func corrupt(b *sim.Batch, r *rng.RNG) sim.Batch {
	out := *b
	out.Tests = append([]sim.LineTest(nil), b.Tests...)
	if len(out.Tests) == 0 {
		// A testless week can still be corrupted through its tickets.
		out.Tickets = append([]data.Ticket(nil), b.Tickets...)
		if len(out.Tickets) > 0 {
			out.Tickets[r.Intn(len(out.Tickets))].Day = -1
		}
		return out
	}
	for k := 1 + r.Intn(3); k > 0; k-- {
		out.Tests[r.Intn(len(out.Tests))].M.Week = corruptWeek
	}
	return out
}

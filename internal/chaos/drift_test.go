package chaos

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"nevermind/internal/core"
	"nevermind/internal/drift"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
	"nevermind/internal/wal"
)

// The drift chaos battery: the closed retraining loop under injected
// faults. Three adversaries, each of which must leave the loop on the exact
// trajectory of a clean replay:
//
//   - retrain failures (the trainer host dies) — the anchored training
//     window makes the eventual challenger identical, just later;
//   - reload-probe failures during promotion — the champion keeps serving
//     and the promotion retries until the probe passes;
//   - kill -9 mid-shadow — WAL recovery plus a controller rebuild must
//     neither lose nor double-count shadow weeks.

// driftChaosCfg parameterises one closed-loop run over the chaos fixture.
type driftChaosCfg struct {
	chaos    *Config
	lo, hi   int
	scenario sim.Scenario
	// killWhen, when set, abandons the run the first tick the predicate
	// holds and returns early with died=true.
	killWhen func(drift.Status) bool
	// durableDir, when set, arms the WAL on the server's store.
	durableDir string
}

// driftChaosRes captures a run's observables for replay comparison.
type driftChaosRes struct {
	status        drift.Status
	history       []drift.WeekStats
	modelIDs      []string
	challengerIDs []string // per-tick Status.ChallengerID
	stats         Stats
	died          bool
	lastWeek      int
	recoveredWeek int // store's latest week right after WAL recovery; -1 without durability
}

// driftThresholds is the chaos fixture's operating point: the PSI ceiling
// between clean jitter and the firmware shift, the AP floor out of the way
// (weekly AP at fixture scale is too noisy for a relative floor).
func driftThresholds() drift.Thresholds {
	th := drift.DefaultThresholds()
	th.PSICeil = 0.2
	th.APFloor = 0.01
	return th
}

func defaultDriftChaosCfg() driftChaosCfg {
	sc := sim.DefaultScenario(sim.ScenarioFirmware)
	sc.Week = 45
	return driftChaosCfg{lo: 40, hi: 51, scenario: sc}
}

// runDriftChaos drives server + pipeline + drift controller over the
// scenario feed with the chaos layer armed, stepping week by week.
func runDriftChaos(t *testing.T, cfg driftChaosCfg) driftChaosRes {
	t.Helper()
	ds, pred0 := fixture(t)

	dir := t.TempDir()
	predPath := filepath.Join(dir, "pred.gob.gz")
	if err := pred0.Save(predPath); err != nil {
		t.Fatal(err)
	}
	pred, err := core.LoadPredictor(predPath)
	if err != nil {
		t.Fatal(err)
	}

	var inj *Injector
	var faults *serve.FaultHooks
	var hooks *drift.FaultHooks
	if cfg.chaos != nil {
		c := *cfg.chaos
		c.Sleep = func(time.Duration) {}
		inj = New(c)
		faults = inj.Hooks()
		hooks = inj.DriftHooks()
	}
	srv, err := serve.New(serve.Config{Predictor: pred, Shards: 2, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}

	recoveredWeek := -1
	var dur *serve.Durability
	if cfg.durableDir != "" {
		dur, err = serve.OpenDurability(srv.Store(), nil, serve.DurabilityConfig{
			Dir:             cfg.durableDir,
			Sync:            wal.SyncNever,
			CheckpointEvery: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		recoveredWeek = srv.Store().LatestWeek()
	}

	src, err := sim.NewSource(ds, cfg.lo, cfg.hi)
	if err != nil {
		t.Fatal(err)
	}
	feed, err := sim.NewScenarioSource(src, cfg.scenario)
	if err != nil {
		t.Fatal(err)
	}
	var pfeed serve.Source = feed
	if inj != nil {
		pfeed = inj.WrapSource(pfeed)
	}

	ctrl, err := drift.New(drift.Config{
		Server:     srv,
		Thresholds: driftThresholds(),
		TrainWeeks: 8,
		Hooks:      hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	// If the recovered store already holds weeks (restart path), fold them
	// into the controller before the pipeline resumes — but stop one week
	// short of the recovered watermark: the WAL is append-ordered, so only
	// its newest week can be torn, and that week is re-delivered whole by
	// the resumed feed and observed then.
	if recoveredWeek > cfg.lo {
		ctrl.Rebuild(srv.Store().Snapshot(), cfg.lo, recoveredWeek-1)
	}

	pl, err := serve.NewPipeline(srv, serve.PipelineConfig{
		Source:     pfeed,
		Retry:      serve.RetryConfig{MaxAttempts: 10, Seed: 5},
		Sleep:      func(time.Duration) {},
		OnSnapshot: ctrl.ObserveWeek,
	})
	if err != nil {
		t.Fatal(err)
	}

	res := driftChaosRes{recoveredWeek: recoveredWeek}
	for {
		ok, err := pl.Step()
		if err != nil {
			t.Fatalf("pipeline died: %v", err)
		}
		if !ok {
			break
		}
		res.modelIDs = append(res.modelIDs, srv.Models().ID)
		res.challengerIDs = append(res.challengerIDs, ctrl.Status().ChallengerID)
		if cfg.killWhen != nil && cfg.killWhen(ctrl.Status()) {
			res.died = true
			if dur != nil {
				dur.Abandon() // kill -9: no final sync
			}
			break
		}
	}
	if dur != nil && !res.died {
		if err := dur.Close(); err != nil {
			t.Fatal(err)
		}
	}
	res.status = ctrl.Status()
	res.history = ctrl.History()
	res.lastWeek = srv.Store().LatestWeek()
	if inj != nil {
		res.stats = inj.Stats()
	}
	return res
}

// assertSameTrajectory compares the controller-visible outcome of two runs:
// identical week-by-week monitor history and identical final loop counters
// except the failure tallies the adversary is expected to add.
func assertSameTrajectory(t *testing.T, name string, clean, got driftChaosRes) {
	t.Helper()
	cs, gs := clean.status, got.status
	// The fault counters are the adversary's signature; zero them out
	// before requiring equality of everything else.
	gs.RetrainFailures = cs.RetrainFailures
	gs.PromoteFailures = cs.PromoteFailures
	if cs != gs {
		t.Fatalf("%s: status diverged:\n clean %+v\n chaos %+v", name, clean.status, got.status)
	}
	if !reflect.DeepEqual(clean.history, got.history) {
		for i := range clean.history {
			if i < len(got.history) && !reflect.DeepEqual(clean.history[i], got.history[i]) {
				t.Fatalf("%s: history diverged at week %d:\n clean %+v\n chaos %+v",
					name, clean.history[i].Week, clean.history[i], got.history[i])
			}
		}
		t.Fatalf("%s: history length diverged: %d vs %d", name, len(clean.history), len(got.history))
	}
}

// firstChallenger returns the first non-empty per-tick challenger ID.
func firstChallenger(ids []string) string {
	for _, id := range ids {
		if id != "" {
			return id
		}
	}
	return ""
}

// TestDriftRetrainFaultSoak: challenger training fails under injected
// faults. The training window is anchored at trip time, so when the retry
// finally lands it must produce the exact same challenger the clean run
// trained — only later. The whole faulted run must also replay
// bit-identically from its seed.
func TestDriftRetrainFaultSoak(t *testing.T) {
	clean := runDriftChaos(t, defaultDriftChaosCfg())
	if clean.status.Retrains != 2 || clean.status.Rejections != 1 {
		t.Fatalf("clean trajectory moved off its pin: %+v", clean.status)
	}

	cfg := defaultDriftChaosCfg()
	cfg.chaos = &Config{Seed: 77, RetrainError: 0.8, MaxConsecutive: 2}
	got := runDriftChaos(t, cfg)

	if got.stats.RetrainFaults == 0 {
		t.Fatal("retrain fault site never fired")
	}
	if int64(got.status.RetrainFailures) != got.stats.RetrainFaults {
		t.Fatalf("controller counted %d retrain failures, injector %d",
			got.status.RetrainFailures, got.stats.RetrainFaults)
	}
	// Anchored retraining: the first challenger that finally trains is the
	// same one the clean run trained — the fault changed when, never what.
	cleanFirst, gotFirst := firstChallenger(clean.challengerIDs), firstChallenger(got.challengerIDs)
	if cleanFirst == "" || gotFirst != cleanFirst {
		t.Fatalf("first challenger diverged: clean %q, faulted %q", cleanFirst, gotFirst)
	}
	if got.status.Retrains == 0 {
		t.Fatalf("faulted run never completed a retrain: %+v", got.status)
	}
	// The model served never changed in either run on this horizon.
	for i, id := range got.modelIDs {
		if id != "boot" {
			t.Fatalf("tick %d served %s on a no-promotion horizon", i, id)
		}
	}

	again := runDriftChaos(t, cfg)
	if !reflect.DeepEqual(got, again) {
		t.Fatalf("faulted run is not replay-deterministic:\n %+v\n %+v", got.status, again.status)
	}
}

// TestDriftPromoteReloadFaultSoak: the reload probe fails while a won
// challenger is being promoted. The champion must keep serving, the
// controller must count the failure and retry on the next tick, and the
// challenger that finally lands must be the same one.
func TestDriftPromoteReloadFaultSoak(t *testing.T) {
	cfg := defaultDriftChaosCfg()
	cfg.lo, cfg.scenario.Week = 36, 41
	clean := runDriftChaos(t, cfg)
	if clean.status.Promotions != 1 || clean.status.ModelID != "challenger-2-w43" {
		t.Fatalf("clean trajectory moved off its pin: %+v", clean.status)
	}
	promoteTick := -1
	for i, id := range clean.modelIDs {
		if id != "boot" {
			promoteTick = i
			break
		}
	}

	faulted := cfg
	faulted.chaos = &Config{Seed: 9, ReloadError: 0.9, MaxConsecutive: 1}
	got := runDriftChaos(t, faulted)

	if got.stats.ReloadFaults == 0 {
		t.Fatal("reload fault site never fired")
	}
	if got.status.PromoteFailures == 0 {
		t.Fatalf("no promotion attempt failed under reload faults: %+v", got.status)
	}
	if got.status.Promotions != 1 || got.status.ModelID != clean.status.ModelID {
		t.Fatalf("promotion did not land despite retries: %+v", got.status)
	}
	// The failed probe never half-promoted: the champion served every tick
	// until the retried promotion landed, strictly after the clean run's.
	gotPromote := -1
	for i, id := range got.modelIDs {
		if id != "boot" {
			gotPromote = i
			break
		}
		if i <= promoteTick && got.modelIDs[i] != "boot" {
			t.Fatalf("tick %d: unexpected model %s", i, id)
		}
	}
	if gotPromote <= promoteTick {
		t.Fatalf("faulted promotion landed at tick %d, not after clean tick %d", gotPromote, promoteTick)
	}

	again := runDriftChaos(t, faulted)
	if !reflect.DeepEqual(got, again) {
		t.Fatalf("faulted run is not replay-deterministic:\n %+v\n %+v", got.status, again.status)
	}
}

// TestDriftKillMidShadowRestart: kill -9 while the challenger is two weeks
// into its shadow window, recover the store from the WAL, rebuild the
// controller from the recovered snapshot and resume the feed. The restarted
// loop must converge to the exact trajectory of a never-crashed run —
// shadow weeks neither lost nor double-counted, same promotion, same
// rollback, same final champion.
func TestDriftKillMidShadowRestart(t *testing.T) {
	cfg := defaultDriftChaosCfg()
	cfg.lo, cfg.scenario.Week = 33, 38
	clean := runDriftChaos(t, cfg)
	if clean.status.Promotions != 2 || clean.status.Rollbacks != 1 {
		t.Fatalf("clean trajectory moved off its pin: %+v", clean.status)
	}

	dir := t.TempDir()
	killed := cfg
	killed.durableDir = dir
	killed.killWhen = func(st drift.Status) bool {
		return st.State == "shadowing" && st.ShadowWeeks == 2
	}
	dead := runDriftChaos(t, killed)
	if !dead.died {
		t.Fatal("kill predicate never fired; the run completed")
	}
	if dead.status.ShadowWeeks != 2 || dead.status.Retrains != 1 {
		t.Fatalf("killed mid-shadow in the wrong state: %+v", dead.status)
	}

	resumed := cfg
	resumed.durableDir = dir
	got := runDriftChaos(t, resumed)
	if got.recoveredWeek < cfg.lo {
		t.Fatalf("WAL recovery restored nothing (latest week %d)", got.recoveredWeek)
	}

	assertSameTrajectory(t, "kill-mid-shadow", clean, got)
	if got.status.ModelID != clean.status.ModelID {
		t.Fatalf("restarted run serves %s, clean run %s", got.status.ModelID, clean.status.ModelID)
	}
	var cleanShadow, gotShadow int
	for i := range clean.history {
		if clean.history[i].Shadowed {
			cleanShadow++
		}
		if got.history[i].Shadowed {
			gotShadow++
		}
	}
	if cleanShadow == 0 || gotShadow != cleanShadow {
		t.Fatalf("shadow weeks lost or double-counted: clean %d, restarted %d", cleanShadow, gotShadow)
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestDeriveStable(t *testing.T) {
	a := Derive(7, 123, 456)
	b := Derive(7, 123, 456)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive with identical labels is not stable")
	}
	c := Derive(7, 123, 457)
	if Derive(7, 123, 456).Uint64() == c.Uint64() {
		t.Fatal("Derive with different labels collided")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	a := parent.Split(1)
	b := parent.Split(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("sibling splits collided on first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(7)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("normal mean %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance %v, want ~4", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	if m := sum / n; math.Abs(m-5) > 0.1 {
		t.Fatalf("exponential mean %v, want ~5", m)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(9)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.25)
	}
	mean := float64(sum) / n
	want := 0.75 / 0.25 // (1-p)/p = 3
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean %v, want ~%v", mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(10)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(11)
	for _, mean := range []float64{0.5, 4, 30, 200} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean %v", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(12)
	for i := 0; i < 10000; i++ {
		if r.Poisson(100) < 0 {
			t.Fatal("negative Poisson draw")
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	r := New(13)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight class drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight-3 class drawn %vx weight-1 class, want ~3x", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Categorical of empty weights should panic")
		}
	}()
	New(1).Categorical(nil)
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUniformRange(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		v := New(seed).Uniform(-4, 9)
		return v >= -4 && v < 9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint16) bool {
		size := int(n) + 1
		v := New(seed).Intn(size)
		return v >= 0 && v < size
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Normal(0, 1)
	}
	_ = sink
}

// Package rng provides a deterministic, splittable pseudo-random number
// generator and the distributions used by the DSL network simulator.
//
// Reproducibility is a hard requirement for the NEVERMIND experiments: every
// table and figure must regenerate bit-identically from a seed. The stdlib
// math/rand/v2 generators are seedable but not conveniently splittable into
// independent per-entity streams. This package implements SplitMix64, whose
// output is both high quality and trivially forkable: a child stream derived
// from (seed, label) is statistically independent of its siblings, so every
// line, fault process and customer behaviour model can own a private stream
// that does not shift when unrelated parts of the simulation change.
package rng

import "math"

// RNG is a SplitMix64 pseudo-random number generator. The zero value is a
// valid generator seeded with 0; prefer New to make the seed explicit.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// mix64 is the SplitMix64 output function (Steele, Lea, Flood 2014).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Split returns a new generator whose stream is independent of the parent and
// of any sibling split with a different label.
func (r *RNG) Split(label uint64) *RNG {
	return &RNG{state: mix64(r.Uint64() ^ mix64(label^0xa0761d6478bd642f))}
}

// Derive returns a generator deterministically derived from seed and the
// labels, without consuming any state. It is the preferred way to give each
// simulated entity its own stream: Derive(seed, lineID, weekNo) is stable no
// matter how many other entities exist.
func Derive(seed uint64, labels ...uint64) *RNG {
	s := mix64(seed ^ 0x8bb84b93962eacc9)
	for _, l := range labels {
		s = mix64(s ^ mix64(l+0x2545f4914f6cdd1d))
	}
	return &RNG{state: s}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials, so the result is >= 0 with mean (1-p)/p.
// It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log(1-p))
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 64 where
// Knuth's product underflows and the approximation error is negligible.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Categorical returns an index drawn from the unnormalised weights.
// It panics if the weights are empty or sum to a non-positive value.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: Categorical needs positive weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm fills a permutation of [0, n) using the Fisher-Yates shuffle.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

package drift

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/serve"
)

func TestParseThresholds(t *testing.T) {
	if th, err := ParseThresholds(""); err != nil || th != DefaultThresholds() {
		t.Fatalf("empty spec: %+v, %v", th, err)
	}
	th, err := ParseThresholds("psi-ceil=0.2,k=3,min-gain=0.05")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultThresholds()
	want.PSICeil = 0.2
	want.K = 3
	want.MinGain = 0.05
	if th != want {
		t.Fatalf("got %+v want %+v", th, want)
	}

	for _, spec := range []string{
		"psi-ceil",   // not key=value
		"psi-ceil=",  // empty value
		"psi-ceil=x", // not a number
		"psi-ceil=0", // out of range
		"psi-ceil=-1",
		"psi-ceil=NaN",
		"psi-ceil=+Inf",
		"ap-floor=0",
		"ap-floor=1.5",
		"gap-ceil=0",
		"k=0",
		fmt.Sprintf("k=%d", data.Weeks+1),
		"w=0",
		"min-gain=-0.1",
		"baseline-weeks=0",
		"bins=1",
		"bins=2048",
		"tempo=4",           // unknown key
		"psi-ceil=0.2,,k=3", // empty element
	} {
		if _, err := ParseThresholds(spec); err == nil {
			t.Errorf("ParseThresholds(%q) accepted", spec)
		}
	}
}

func TestThresholdsStringRoundTrip(t *testing.T) {
	for _, th := range []Thresholds{
		DefaultThresholds(),
		{APFloor: 0.33, GapCeil: 0.1, PSICeil: 2.5, K: 1, W: 7, MinGain: 0.125, BaselineWeeks: 6, Bins: 64},
	} {
		back, err := ParseThresholds(th.String())
		if err != nil {
			t.Fatalf("%q: %v", th.String(), err)
		}
		if back != th {
			t.Fatalf("round trip: %+v -> %q -> %+v", th, th.String(), back)
		}
	}
}

// psiStore builds a tiny snapshot with hand-laid feature values: every
// feature of line l at week w carries base[w] + l (an arithmetic ramp), so
// shifting base shifts the whole distribution by a known amount.
func psiSnapshot(t *testing.T, weekBase map[int]float32, lines int) *serve.Snapshot {
	t.Helper()
	st := serve.NewStore(2)
	for w, base := range weekBase {
		recs := make([]serve.TestRecord, lines)
		for l := 0; l < lines; l++ {
			f := make([]float32, data.NumBasicFeatures)
			for i := range f {
				f[i] = base + float32(l)
			}
			recs[l] = serve.TestRecord{Line: data.LineID(l), Week: w, F: f}
		}
		if _, err := st.IngestTests(recs); err != nil {
			t.Fatal(err)
		}
	}
	return st.Snapshot()
}

func TestPSI(t *testing.T) {
	const lines = 200
	sn := psiSnapshot(t, map[int]float32{
		10: 0,   // reference
		11: 0,   // identical distribution
		12: 20,  // shifted by 10% of the range
		13: 100, // shifted by half the range
		14: 500, // disjoint support
	}, lines)

	ref := NewReference(sn, []int{10}, 10)
	if ref == nil {
		t.Fatal("nil reference over a populated week")
	}

	same := ref.PSI(sn, 11)
	for f, v := range same {
		if v != 0 {
			t.Fatalf("identical distribution has PSI %v at feature %d", v, f)
		}
	}
	small := ref.PSI(sn, 12)
	mid := ref.PSI(sn, 13)
	far := ref.PSI(sn, 14)
	for f := 0; f < data.NumBasicFeatures; f++ {
		if !(small[f] > 0) {
			t.Fatalf("shifted distribution has PSI %v at feature %d", small[f], f)
		}
		if !(mid[f] > small[f]) || !(far[f] > mid[f]) {
			t.Fatalf("PSI not monotone in shift at feature %d: %v, %v, %v", f, small[f], mid[f], far[f])
		}
	}
	// A fully disjoint week concentrates everything in the top bin: with a
	// 10-bin reference that is (1−0.1)·ln(1/1e-4)-ish per the epsilon floor
	// — assert it cleared a conservative bound.
	if far[0] < 2 {
		t.Fatalf("disjoint distribution PSI %v suspiciously small", far[0])
	}

	if got := ref.PSI(sn, 20); got != nil {
		t.Fatalf("PSI of an empty week = %v, want nil", got)
	}
	if r := NewReference(sn, []int{20, 21}, 10); r != nil {
		t.Fatal("reference over empty weeks should be nil")
	}
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a server accepted")
	}
	_, predPath := driftFixture(t)
	srv := newFixtureServer(t, predPath)
	bad := DefaultThresholds()
	bad.Bins = 1
	if _, err := New(Config{Server: srv, Thresholds: bad}); err == nil {
		t.Fatal("New with invalid thresholds accepted")
	}
	ctrl, err := New(Config{Server: srv})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Thresholds() != DefaultThresholds() {
		t.Fatalf("zero thresholds did not default: %+v", ctrl.Thresholds())
	}
}

// TestObserveWeekIdempotent: re-observing an already-observed or older week
// is a no-op — the pipeline's exactly-once guard is belt, this is braces
// (chaos re-delivery, WAL replay after restart).
func TestObserveWeekIdempotent(t *testing.T) {
	cfg := firmwareSoakCfg()
	cfg.hi = 41 // through the first retrain and two shadow weeks
	res := runDriftSoak(t, cfg)
	if res.status.Retrains != 1 || res.status.ShadowWeeks != 2 {
		t.Fatalf("horizon drifted from the pinned setup: %+v", res.status)
	}

	// Re-run, then hammer ObserveWeek with already-seen weeks.
	ds, predPath := driftFixture(t)
	srv := newFixtureServer(t, predPath)
	ctrl, err := New(Config{Server: srv, Thresholds: cfg.th, TrainWeeks: cfg.trainWeeks})
	if err != nil {
		t.Fatal(err)
	}
	sn := ingestWeeks(t, srv, ds, cfg)
	ctrl.Rebuild(sn, cfg.lo, cfg.hi)
	before, histBefore := ctrl.Status(), ctrl.History()
	if before.Retrains != 1 || before.ShadowWeeks != 2 {
		t.Fatalf("rebuild diverged from pipeline run: %+v vs %+v", before, res.status)
	}
	for _, w := range []int{cfg.hi, cfg.hi - 1, cfg.lo, 0} {
		ctrl.ObserveWeek(sn, w)
	}
	after, histAfter := ctrl.Status(), ctrl.History()
	if after != before {
		t.Fatalf("re-observation moved status: %+v -> %+v", before, after)
	}
	if !reflect.DeepEqual(histBefore, histAfter) {
		t.Fatal("re-observation moved history")
	}
}

// TestAPAndGapTrips pins the two label-side monitors the firmware soak
// never needs (PSI fires first there): with the distribution monitor
// effectively off, a clean feed still trips the AP floor on its worst
// matured weeks and the calibration ceiling once the gap threshold is
// squeezed under the fixture's resting reliability gap.
func TestAPAndGapTrips(t *testing.T) {
	th := DefaultThresholds()
	th.PSICeil = 1000 // distribution monitor effectively off
	th.APFloor = 1.0  // any matured week below the baseline trips
	th.GapCeil = 0.015
	th.K = data.Weeks // never actually retrain

	cfg := soakCfg{th: th, trainWeeks: 8, lo: 30, hi: 45}
	res := runDriftSoak(t, cfg)
	if res.status.Retrains != 0 || res.status.Promotions != 0 {
		t.Fatalf("monitor-only run retrained: %+v", res.status)
	}
	var apTrips, gapTrips int
	for _, ws := range res.history {
		for _, reason := range ws.TripReasons {
			switch {
			case strings.HasPrefix(reason, "ap("):
				apTrips++
			case strings.HasPrefix(reason, "gap("):
				gapTrips++
			case strings.HasPrefix(reason, "psi:"):
				t.Fatalf("PSI tripped at ceiling 1000: week %d %v", ws.Week, ws.TripReasons)
			}
		}
	}
	if apTrips == 0 {
		t.Fatal("AP floor at 1.0×baseline never tripped")
	}
	if gapTrips == 0 {
		t.Fatal("squeezed gap ceiling never tripped")
	}
	if res.status.TripsTotal == 0 || res.status.Rollbacks != 0 {
		t.Fatalf("unexpected trajectory: %+v", res.status)
	}
}

// newFixtureServer builds a serving stack around the saved fixture champion.
func newFixtureServer(t *testing.T, predPath string) *serve.Server {
	t.Helper()
	pred, err := core.LoadPredictor(predPath)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Predictor: pred, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// ingestWeeks pushes the configured weeks (with any scenario) into the
// server's store directly, without a pipeline, and returns the snapshot.
func ingestWeeks(t *testing.T, srv *serve.Server, ds *data.Dataset, cfg soakCfg) *serve.Snapshot {
	t.Helper()
	feed := newFeed(t, ds, cfg)
	for {
		b, ok, err := feed.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		tests := make([]serve.TestRecord, len(b.Tests))
		for i, lt := range b.Tests {
			tests[i] = serve.TestRecord{
				Line: lt.M.Line, Week: lt.M.Week, Missing: lt.M.Missing, F: lt.M.F[:],
				Profile: lt.Profile, DSLAM: lt.DSLAM, Usage: lt.Usage,
			}
		}
		tickets := make([]serve.TicketRecord, len(b.Tickets))
		for i, tk := range b.Tickets {
			tickets[i] = serve.TicketRecord{ID: tk.ID, Line: tk.Line, Day: tk.Day, Category: uint8(tk.Category)}
		}
		if _, err := srv.Store().IngestTests(tests); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Store().IngestTickets(tickets); err != nil {
			t.Fatal(err)
		}
	}
	return srv.Store().Snapshot()
}

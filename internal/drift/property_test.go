package drift

import (
	"reflect"
	"testing"

	"nevermind/internal/data"
	"nevermind/internal/rng"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
)

// permutedFeed shuffles the order of test and ticket records inside each
// batch (never across batches) with a seeded per-week permutation. The
// weekly feed's arrival order is an accident of collection infrastructure;
// nothing the drift monitors compute may depend on it.
type permutedFeed struct {
	inner serve.Source
	seed  uint64
}

func (p permutedFeed) Remaining() int { return p.inner.Remaining() }

func (p permutedFeed) Next() (sim.Batch, bool, error) {
	b, ok, err := p.inner.Next()
	if !ok || err != nil {
		return b, ok, err
	}
	r := rng.Derive(p.seed, 0x9e37, uint64(b.Week))
	tests := make([]sim.LineTest, len(b.Tests))
	for i, j := range r.Perm(len(b.Tests)) {
		tests[j] = b.Tests[i]
	}
	b.Tests = tests
	tickets := make([]data.Ticket, len(b.Tickets))
	for i, j := range r.Perm(len(b.Tickets)) {
		tickets[j] = b.Tickets[i]
	}
	b.Tickets = tickets
	return b, true, nil
}

// TestDriftStatsOrderIndependent ingests the same weeks into two stores —
// different shard counts, and one receiving each week's records split into
// seeded-permuted sub-batches — and asserts the PSI reference, the
// per-week PSI vector, and the per-week line ordering the monitors consume
// are identical. This is the unit-level statement of the property; the
// full-stack statement is TestDriftSoakPermutationInvariant.
func TestDriftStatsOrderIndependent(t *testing.T) {
	ds, _ := driftFixture(t)
	const lo, hi, baseWeeks = 30, 40, 4

	ingest := func(shards int, permSeed uint64, pieces int) *serve.Snapshot {
		st := serve.NewStore(shards)
		src, err := sim.NewSource(ds, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		for {
			b, ok := src.Next()
			if !ok {
				break
			}
			tests := make([]serve.TestRecord, len(b.Tests))
			for i, lt := range b.Tests {
				tests[i] = serve.TestRecord{
					Line: lt.M.Line, Week: lt.M.Week, Missing: lt.M.Missing, F: lt.M.F[:],
					Profile: lt.Profile, DSLAM: lt.DSLAM, Usage: lt.Usage,
				}
			}
			tickets := make([]serve.TicketRecord, len(b.Tickets))
			for i, tk := range b.Tickets {
				tickets[i] = serve.TicketRecord{ID: tk.ID, Line: tk.Line, Day: tk.Day, Category: uint8(tk.Category)}
			}
			if permSeed != 0 {
				r := rng.Derive(permSeed, uint64(b.Week))
				pt := make([]serve.TestRecord, len(tests))
				for i, j := range r.Perm(len(tests)) {
					pt[j] = tests[i]
				}
				tests = pt
				pk := make([]serve.TicketRecord, len(tickets))
				for i, j := range r.Perm(len(tickets)) {
					pk[j] = tickets[i]
				}
				tickets = pk
			}
			// Deliver in pieces: a week often arrives as several ingest
			// calls in production.
			for p := 0; p < pieces; p++ {
				from, to := p*len(tests)/pieces, (p+1)*len(tests)/pieces
				if from < to {
					if _, err := st.IngestTests(tests[from:to]); err != nil {
						t.Fatal(err)
					}
				}
				from, to = p*len(tickets)/pieces, (p+1)*len(tickets)/pieces
				if from < to {
					if _, err := st.IngestTickets(tickets[from:to]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return st.Snapshot()
	}

	base := ingest(2, 0, 1)
	for _, alt := range []struct {
		name   string
		shards int
		seed   uint64
		pieces int
	}{
		{"permuted", 2, 17, 1},
		{"permuted-split", 2, 23, 3},
		{"resharded-permuted", 5, 41, 2},
	} {
		sn := ingest(alt.shards, alt.seed, alt.pieces)
		for w := lo; w <= hi; w++ {
			if !reflect.DeepEqual(base.LinesAt(w), sn.LinesAt(w)) {
				t.Fatalf("%s: week %d line ordering differs", alt.name, w)
			}
		}
		refA := NewReference(base, weekRangeInts(lo, lo+baseWeeks-1), DefaultThresholds().Bins)
		refB := NewReference(sn, weekRangeInts(lo, lo+baseWeeks-1), DefaultThresholds().Bins)
		if refA == nil || refB == nil {
			t.Fatalf("%s: nil reference", alt.name)
		}
		if !reflect.DeepEqual(refA, refB) {
			t.Fatalf("%s: PSI references differ", alt.name)
		}
		for w := lo + baseWeeks; w <= hi; w++ {
			a, b := refA.PSI(base, w), refB.PSI(sn, w)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: week %d PSI differs:\n a=%v\n b=%v", alt.name, w, a, b)
			}
		}
	}
}

func weekRangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for w := lo; w <= hi; w++ {
		out = append(out, w)
	}
	return out
}

// TestDriftSoakPermutationInvariant is the full-stack statement: the
// entire drift soak — monitors, trips, retrains, shadow scores,
// promotions, served bytes — is invariant under within-batch record
// shuffles of the feed.
func TestDriftSoakPermutationInvariant(t *testing.T) {
	cfg := firmwareSoakCfg()
	cfg.hi = 42 // through the first retrain, shadow window and promotion
	base := runDriftSoak(t, cfg)
	if base.status.Retrains != 1 || base.status.Promotions != 1 {
		t.Fatalf("horizon no longer covers retrain+promotion: %+v", base.status)
	}
	for _, seed := range []uint64{3, 77} {
		cfg := cfg
		cfg.wrapFeed = func(s serve.Source) serve.Source { return permutedFeed{inner: s, seed: seed} }
		got := runDriftSoak(t, cfg)
		got.traceJSON = base.traceJSON // spans carry wall-clock timestamps
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("seed %d: permuted feed changed an observable (status %+v vs %+v)",
				seed, base.status, got.status)
		}
	}
}

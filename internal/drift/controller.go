package drift

import (
	"errors"
	"fmt"
	"sync"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/ml"
	"nevermind/internal/rng"
	"nevermind/internal/serve"
)

// Trainer builds a challenger from the accumulated store. The default
// trains the full §4 pipeline on the snapshot's dataset; tests inject
// cheaper stand-ins.
type Trainer func(sn *serve.Snapshot, trainWeeks []int, cfg core.PredictorConfig) (*core.TicketPredictor, error)

// FaultHooks are the drift loop's chaos seams. Every field may be nil.
type FaultHooks struct {
	// Retrain runs before a challenger training attempt; an error aborts
	// the attempt (it is retried on the next tripped tick).
	Retrain func(week int) error
}

// Config assembles a Controller.
type Config struct {
	// Server is the serving daemon the monitors watch and promotions swap.
	Server *serve.Server
	// Thresholds is the monitor/retrain operating point (zero value is
	// replaced by DefaultThresholds).
	Thresholds Thresholds
	// TrainWeeks is how many matured weeks a challenger trains on
	// (default 8). The window is anchored at the matured week of the tick
	// that scheduled the retrain, so a delayed attempt (an injected
	// retrain fault) still trains on exactly the same data.
	TrainWeeks int
	// Trainer replaces the default store-backed training entry point.
	Trainer Trainer
	// Hooks installs fault injection; nil in production.
	Hooks *FaultHooks
	// Logf, when set, receives one line per loop event.
	Logf func(format string, args ...any)
}

// shadowEntry is one matured week's paired evaluation: the serving
// champion against the model being auditioned (a shadowing challenger, or
// the demoted champion during a post-promotion holdout).
type shadowEntry struct {
	Week  int     `json:"week"`
	Champ float64 `json:"champion_ap"`
	Other float64 `json:"other_ap"`
}

// WeekStats is one week's monitor readout. The distribution fields fill in
// when the week is observed; the performance fields fill in four weeks
// later, once the week's label window has closed; Tripped is the decision
// the controller took at this week's tick.
type WeekStats struct {
	Week int `json:"week"`

	PSIEvaluated bool    `json:"psi_evaluated"`
	PSIMax       float64 `json:"psi_max"`
	PSIFeature   string  `json:"psi_feature,omitempty"`

	Evaluated bool    `json:"evaluated"`
	AP        float64 `json:"ap"`
	Gap       float64 `json:"gap"`

	Shadowed     bool    `json:"shadowed,omitempty"`
	ChallengerAP float64 `json:"challenger_ap,omitempty"`
	Holdout      bool    `json:"holdout,omitempty"`
	DemotedAP    float64 `json:"demoted_ap,omitempty"`

	Tripped     bool     `json:"tripped"`
	TripReasons []string `json:"trip_reasons,omitempty"`

	psi []float64 // per-feature PSI, served via /v1/drift?feature=
}

// Status is the loop's operator surface (served on /v1/drift and folded
// into /healthz).
type Status struct {
	State            string  `json:"state"` // watching | shadowing | holdout
	ModelID          string  `json:"model_id"`
	LastWeek         int     `json:"last_week"`
	BaselineAP       float64 `json:"baseline_ap"`
	ConsecutiveTrips int     `json:"consecutive_trips"`
	TripsTotal       int     `json:"trips_total"`
	Retrains         int     `json:"retrains"`
	RetrainFailures  int     `json:"retrain_failures"`
	ChallengerID     string  `json:"challenger_id,omitempty"`
	ShadowWeeks      int     `json:"shadow_weeks"`
	WeeksToPromotion int     `json:"weeks_to_promotion"`
	Promotions       int     `json:"promotions"`
	PromoteFailures  int     `json:"promote_failures"`
	Rejections       int     `json:"rejections"`
	Rollbacks        int     `json:"rollbacks"`
}

// Controller runs the monitors and the champion/challenger state machine.
// ObserveWeek is a deterministic fold over (snapshot, week): every decision
// derives from ingested data, frozen thresholds and seeded streams, so two
// replays of the same feed agree bit for bit, and a restart rebuilds the
// exact pre-crash state by replaying the recovered weeks (see Rebuild).
type Controller struct {
	mu         sync.Mutex
	srv        *serve.Server
	th         Thresholds
	trainWeeks int
	trainer    Trainer
	hooks      *FaultHooks
	logf       func(string, ...any)
	lag        int // weeks until a week's label window closes

	haveFirst           bool
	firstWeek, lastWeek int
	weeks               map[int]*WeekStats
	refWeeks            []int
	ref                 *Reference
	baselineN           int
	baselineSum         float64
	baselineAP          float64
	baselineFrozen      bool
	consec              int
	tripsTotal          int
	pendingAnchor       int
	havePending         bool
	retrains            int
	retrainFailures     int
	challenger          *core.TicketPredictor
	challengerID        string
	shadow              []shadowEntry
	demoted             *core.TicketPredictor
	demotedID           string
	holdout             []shadowEntry
	promotions          int
	promoteFailures     int
	rejections          int
	rollbacks           int
}

// New builds a controller bound to a server.
func New(cfg Config) (*Controller, error) {
	if cfg.Server == nil {
		return nil, errors.New("drift: controller needs a server")
	}
	if (cfg.Thresholds == Thresholds{}) {
		cfg.Thresholds = DefaultThresholds()
	}
	if err := cfg.Thresholds.Validate(); err != nil {
		return nil, err
	}
	if cfg.TrainWeeks <= 0 {
		cfg.TrainWeeks = 8
	}
	if cfg.Trainer == nil {
		cfg.Trainer = func(sn *serve.Snapshot, weeks []int, pcfg core.PredictorConfig) (*core.TicketPredictor, error) {
			return core.TrainPredictor(sn.DS, weeks, pcfg)
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	wd := cfg.Server.Models().Pred.Cfg.WindowDays
	return &Controller{
		srv:        cfg.Server,
		th:         cfg.Thresholds,
		trainWeeks: cfg.TrainWeeks,
		trainer:    cfg.Trainer,
		hooks:      cfg.Hooks,
		logf:       cfg.Logf,
		lag:        (wd + 6) / 7,
		weeks:      make(map[int]*WeekStats),
	}, nil
}

// Thresholds returns the frozen operating point.
func (c *Controller) Thresholds() Thresholds { return c.th }

func (c *Controller) stat(week int) *WeekStats {
	ws := c.weeks[week]
	if ws == nil {
		ws = &WeekStats{Week: week}
		c.weeks[week] = ws
	}
	return ws
}

// ObserveWeek folds one completed pipeline tick into the monitors: PSI for
// the week just ingested, AP@N and reliability gap for the week whose
// label window just closed, shadow/holdout evaluations, and the
// trip → retrain → shadow → promote/rollback state machine. Idempotent per
// week — a re-observed week (a replayed restart, a re-delivered batch) is
// a no-op, so shadow weeks are never double-counted.
func (c *Controller) ObserveWeek(sn *serve.Snapshot, week int) {
	if sn == nil || week < 0 || week >= data.Weeks {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.haveFirst && week <= c.lastWeek {
		return
	}
	if !c.haveFirst {
		c.haveFirst = true
		c.firstWeek = week
	}
	c.lastWeek = week

	span := c.srv.Tracer().Start("monitor", week)
	c.observePSI(sn, week)
	if m := week - c.lag; m >= c.firstWeek {
		c.evaluateMatured(sn, m)
	}
	c.advance(sn, week)
	span.End()
}

// Rebuild replays ObserveWeek over every recovered week of a restarted
// store, reconstructing the monitor state a crashed process held — the
// same deterministic fold over the same data arrives at the same state,
// including retraining the same challenger. Call it on a fresh controller
// before resuming the pipeline.
func (c *Controller) Rebuild(sn *serve.Snapshot, firstWeek, lastWeek int) {
	for w := firstWeek; w <= lastWeek; w++ {
		c.ObserveWeek(sn, w)
	}
}

// observePSI either accumulates the week into the pending reference window
// or scores it against the frozen reference.
func (c *Controller) observePSI(sn *serve.Snapshot, week int) {
	ws := c.stat(week)
	if c.ref == nil {
		c.refWeeks = append(c.refWeeks, week)
		if len(c.refWeeks) >= c.th.BaselineWeeks {
			c.ref = NewReference(sn, c.refWeeks, c.th.Bins)
		}
		return
	}
	psi := c.ref.PSI(sn, week)
	if psi == nil {
		return
	}
	ws.psi = psi
	ws.PSIEvaluated = true
	for f, v := range psi {
		if v > ws.PSIMax || f == 0 {
			ws.PSIMax = v
			ws.PSIFeature = data.BasicFeatureNames[f]
		}
	}
}

// evaluateMatured scores matured week m — whose 4-week label window closed
// with this tick's ingest — with the champion (and the challenger or the
// demoted champion, when one is auditioning). Features look backward and
// the label window is complete, so the result is independent of which
// later snapshot computes it.
func (c *Controller) evaluateMatured(sn *serve.Snapshot, m int) {
	ws := c.stat(m)
	lines := sn.LinesAt(m)
	if len(lines) == 0 {
		return
	}
	examples := make([]features.Example, len(lines))
	for i, l := range lines {
		examples[i] = features.Example{Line: l, Week: m}
	}
	champ := c.srv.Models().Pred
	labels := features.Labels(sn.Ix, examples, champ.Cfg.WindowDays)
	ap, gap, err := c.scoreAP(champ, sn, examples, labels, true)
	if err != nil {
		c.logf("drift: week %d champion evaluation: %v", m, err)
		return
	}
	ws.AP, ws.Gap, ws.Evaluated = ap, gap, true
	if !c.baselineFrozen {
		c.baselineSum += ap
		c.baselineN++
		if c.baselineN >= c.th.BaselineWeeks {
			c.baselineAP = c.baselineSum / float64(c.baselineN)
			c.baselineFrozen = true
			c.logf("drift: AP baseline frozen at %.4f over %d weeks", c.baselineAP, c.baselineN)
		}
	}
	if c.challenger != nil {
		span := c.srv.Tracer().Start("shadow", m)
		chalAP, _, err := c.scoreAP(c.challenger, sn, examples, labels, false)
		span.Fail(err).End()
		if err != nil {
			c.logf("drift: week %d challenger shadow: %v", m, err)
		} else {
			ws.ChallengerAP, ws.Shadowed = chalAP, true
			c.shadow = append(c.shadow, shadowEntry{Week: m, Champ: ap, Other: chalAP})
			c.logf("drift: week %d shadow: champion AP %.4f vs challenger %.4f", m, ap, chalAP)
		}
	}
	if c.demoted != nil {
		span := c.srv.Tracer().Start("holdout", m)
		demAP, _, err := c.scoreAP(c.demoted, sn, examples, labels, false)
		span.Fail(err).End()
		if err != nil {
			c.logf("drift: week %d demoted holdout: %v", m, err)
		} else {
			ws.DemotedAP, ws.Holdout = demAP, true
			c.holdout = append(c.holdout, shadowEntry{Week: m, Champ: ap, Other: demAP})
		}
	}
}

// scoreAP ranks the examples with one model and returns its AP@N (and,
// when wantGap is set, its reliability gap).
func (c *Controller) scoreAP(pred *core.TicketPredictor, sn *serve.Snapshot, examples []features.Example, labels []bool, wantGap bool) (ap, gap float64, err error) {
	scores, err := pred.ScoreExamplesIx(sn.DS, sn.Ix, examples)
	if err != nil {
		return 0, 0, err
	}
	n := pred.Cfg.BudgetN
	if n > len(scores) {
		n = len(scores)
	}
	ap = ml.TopNAveragePrecision(scores, labels, n)
	if wantGap {
		probs := make([]float64, len(scores))
		for i, s := range scores {
			probs[i] = pred.Model.Probability(s)
		}
		gap = ml.ReliabilityGap(probs, labels, c.th.Bins)
	}
	return ap, gap, nil
}

// advance runs the tick's trip decision and the retrain/promote/rollback
// state machine.
func (c *Controller) advance(sn *serve.Snapshot, week int) {
	tick := c.stat(week)
	var reasons []string
	if tick.PSIEvaluated && tick.PSIMax > c.th.PSICeil {
		reasons = append(reasons, fmt.Sprintf("psi:%s=%.3f", tick.PSIFeature, tick.PSIMax))
	}
	if ms, ok := c.weeks[week-c.lag]; ok && ms.Evaluated && c.baselineFrozen {
		if ms.AP < c.th.APFloor*c.baselineAP {
			reasons = append(reasons, fmt.Sprintf("ap(w%d)=%.4f<%.4f", ms.Week, ms.AP, c.th.APFloor*c.baselineAP))
		}
		if ms.Gap > c.th.GapCeil {
			reasons = append(reasons, fmt.Sprintf("gap(w%d)=%.4f", ms.Week, ms.Gap))
		}
	}
	tick.Tripped = len(reasons) > 0
	tick.TripReasons = reasons
	if tick.Tripped {
		c.consec++
		c.tripsTotal++
		c.logf("drift: week %d tripped (%d consecutive): %v", week, c.consec, reasons)
	} else {
		c.consec = 0
	}

	// Schedule and run retraining. The training window is anchored at the
	// matured week of the tick that reached K, so a fault-delayed attempt
	// trains on the same frozen window and yields the same challenger.
	if c.challenger == nil && c.demoted == nil {
		if c.consec >= c.th.K && !c.havePending {
			c.pendingAnchor = week - c.lag
			c.havePending = true
		}
		if c.havePending && c.pendingAnchor < c.firstWeek {
			c.pendingAnchor = week - c.lag // too early to have matured data; re-anchor
		}
		if c.havePending && c.pendingAnchor >= c.firstWeek {
			c.tryRetrain(sn, week)
		}
	}

	// Promotion decision after W shadow weeks: probe-verified swap on
	// measured gain, discard on anything less.
	if c.challenger != nil && len(c.shadow) >= c.th.W {
		champMean, chalMean := meanPair(c.shadow)
		if chalMean > champMean+c.th.MinGain {
			span := c.srv.Tracer().Start("promote", week)
			old := c.srv.Models()
			res, err := c.srv.Promote(c.challenger, c.challengerID)
			span.Fail(err).End()
			if err != nil {
				// A failed probe (injected or real) keeps the champion
				// serving; the decision re-runs next tick.
				c.promoteFailures++
				c.logf("drift: week %d promotion of %s failed: %v", week, c.challengerID, err)
			} else {
				// Baselines are NOT re-anchored yet: they re-anchor only
				// once the promotion survives its holdout. If it rolls
				// back, the world is still drifted and the monitors must
				// keep tripping against the original reference.
				c.promotions++
				c.demoted, c.demotedID = old.Pred, old.ID
				c.holdout = nil
				c.challenger, c.shadow = nil, nil
				c.logf("drift: week %d promoted %s (challenger AP %.4f > champion %.4f; probe %d examples)",
					week, c.srv.Models().ID, chalMean, champMean, res.ProbeExamples)
			}
		} else {
			c.rejections++
			c.challenger, c.shadow = nil, nil
			c.consec = 0
			c.havePending = false
			c.logf("drift: week %d challenger %s rejected (AP %.4f vs champion %.4f)",
				week, c.challengerID, chalMean, champMean)
		}
	}

	// Rollback decision after W holdout weeks: if the demoted champion
	// out-ranks the promoted model on fresh matured weeks, swap back
	// through the same probe path.
	if c.demoted != nil && len(c.holdout) >= c.th.W {
		promMean, demMean := meanPair(c.holdout)
		if demMean > promMean+c.th.MinGain {
			span := c.srv.Tracer().Start("rollback", week)
			_, err := c.srv.Promote(c.demoted, c.demotedID)
			span.Fail(err).End()
			if err != nil {
				c.promoteFailures++
				c.logf("drift: week %d rollback to %s failed: %v", week, c.demotedID, err)
			} else {
				// Baselines stay anchored to the original reference: the
				// promotion didn't take, the drift is still live, and the
				// monitors must keep tripping so a better challenger gets
				// trained.
				c.rollbacks++
				c.logf("drift: week %d rolled back to %s (demoted AP %.4f > promoted %.4f)",
					week, c.demotedID, demMean, promMean)
				c.demoted = nil
				c.consec = 0
				c.havePending = false
			}
		} else {
			// The promotion stands: the promoted model is the champion the
			// plant is now measured against, so the PSI reference and AP
			// baseline re-anchor to the new normal.
			c.logf("drift: week %d promotion stands (promoted AP %.4f vs demoted %.4f)", week, promMean, demMean)
			c.demoted = nil
			c.resetBaselines()
		}
	}
}

func (c *Controller) tryRetrain(sn *serve.Snapshot, week int) {
	span := c.srv.Tracer().Start("retrain", week)
	if c.hooks != nil && c.hooks.Retrain != nil {
		if err := c.hooks.Retrain(week); err != nil {
			c.retrainFailures++
			span.Fail(err).End()
			c.logf("drift: week %d retrain attempt failed: %v", week, err)
			return
		}
	}
	anchor := c.pendingAnchor
	lo := anchor - c.trainWeeks + 1
	if lo < c.firstWeek {
		lo = c.firstWeek
	}
	cfg := c.srv.Models().Pred.Cfg
	cfg.Seed = rng.Derive(cfg.Seed, 0xd21f7c, uint64(c.retrains+1), uint64(anchor)).Uint64()
	pred, err := c.trainer(sn, features.WeekRange(lo, anchor), cfg)
	span.Fail(err).End()
	if err != nil {
		c.retrainFailures++
		c.logf("drift: week %d challenger training on [%d,%d] failed: %v", week, lo, anchor, err)
		return
	}
	c.retrains++
	c.challenger = pred
	c.challengerID = fmt.Sprintf("challenger-%d-w%d", c.retrains, anchor)
	c.shadow = nil
	c.havePending = false
	c.logf("drift: week %d retrained %s on weeks [%d,%d]", week, c.challengerID, lo, anchor)
}

func (c *Controller) resetBaselines() {
	c.baselineN, c.baselineSum, c.baselineAP = 0, 0, 0
	c.baselineFrozen = false
	c.ref, c.refWeeks = nil, nil
	c.consec = 0
	c.havePending = false
}

func meanPair(entries []shadowEntry) (champ, other float64) {
	for _, e := range entries {
		champ += e.Champ
		other += e.Other
	}
	n := float64(len(entries))
	return champ / n, other / n
}

// Status snapshots the loop state.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

func (c *Controller) statusLocked() Status {
	st := Status{
		State:            "watching",
		ModelID:          c.srv.Models().ID,
		LastWeek:         -1,
		BaselineAP:       c.baselineAP,
		ConsecutiveTrips: c.consec,
		TripsTotal:       c.tripsTotal,
		Retrains:         c.retrains,
		RetrainFailures:  c.retrainFailures,
		Promotions:       c.promotions,
		PromoteFailures:  c.promoteFailures,
		Rejections:       c.rejections,
		Rollbacks:        c.rollbacks,
	}
	if c.haveFirst {
		st.LastWeek = c.lastWeek
	}
	switch {
	case c.challenger != nil:
		st.State = "shadowing"
		st.ChallengerID = c.challengerID
		st.ShadowWeeks = len(c.shadow)
		if w := c.th.W - len(c.shadow); w > 0 {
			st.WeeksToPromotion = w
		}
	case c.demoted != nil:
		st.State = "holdout"
		st.ShadowWeeks = len(c.holdout)
	}
	return st
}

// ServeStatus adapts Status to the serving layer's /healthz block.
func (c *Controller) ServeStatus() serve.DriftStatus {
	st := c.Status()
	return serve.DriftStatus{
		ModelID:          st.ModelID,
		State:            st.State,
		ConsecutiveTrips: st.ConsecutiveTrips,
		ShadowWeeks:      st.ShadowWeeks,
		WeeksToPromotion: st.WeeksToPromotion,
		Retrains:         st.Retrains,
		Promotions:       st.Promotions,
		Rollbacks:        st.Rollbacks,
	}
}

// History returns every observed week's stats, oldest first.
func (c *Controller) History() []WeekStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.historyLocked(0)
}

// historyLocked returns the last n weeks (0 = all), oldest first.
func (c *Controller) historyLocked(n int) []WeekStats {
	if !c.haveFirst {
		return nil
	}
	out := make([]WeekStats, 0, c.lastWeek-c.firstWeek+1)
	for w := c.firstWeek; w <= c.lastWeek; w++ {
		if ws, ok := c.weeks[w]; ok {
			out = append(out, *ws)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

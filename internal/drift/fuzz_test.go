package drift

import (
	"net/url"
	"testing"

	"nevermind/internal/data"
)

// FuzzDriftParams holds /v1/drift's query parsing to its contract: it
// either errors, or returns a non-negative weeks limit and a feature name
// that is empty or a real Table 2 mnemonic. No input may panic, be
// prefix-parsed, or be silently clamped.
func FuzzDriftParams(f *testing.F) {
	f.Add("")
	f.Add("weeks=4")
	f.Add("weeks=0")
	f.Add("weeks=-1")
	f.Add("weeks=4.5")
	f.Add("weeks=99999999999999999999")
	f.Add("feature=upnmr")
	f.Add("feature=UPNMR")
	f.Add("feature=")
	f.Add("weeks=4&feature=dnpwr")
	f.Add("weeks=4&weeks=5")
	f.Add("color=red")
	f.Add("weeks=%zz")

	f.Fuzz(func(t *testing.T, query string) {
		q, err := url.ParseQuery(query)
		if err != nil {
			return
		}
		p, err := ParseParams(q)
		if err != nil {
			return
		}
		if p.Weeks < 0 {
			t.Fatalf("accepted negative weeks %d from %q", p.Weeks, query)
		}
		if p.Feature != "" && featureIndex(p.Feature) < 0 {
			t.Fatalf("accepted unknown feature %q from %q", p.Feature, query)
		}
		if p.Feature != "" {
			if n := data.BasicFeatureNames[featureIndex(p.Feature)]; n != p.Feature {
				t.Fatalf("feature %q resolved to %q", p.Feature, n)
			}
		}
	})
}

// FuzzThresholds pins the threshold config parser: whatever it accepts must
// validate, and must survive a String() → ParseThresholds() round trip
// unchanged — the property that makes -drift.thresholds flag values,
// /v1/drift's echoed config, and the docs all speak one language.
func FuzzThresholds(f *testing.F) {
	f.Add("")
	f.Add(DefaultThresholds().String())
	f.Add("psi-ceil=0.2")
	f.Add("ap-floor=0.5,k=3")
	f.Add("k=0")
	f.Add("k=-1")
	f.Add("w=100000")
	f.Add("bins=1")
	f.Add("bins=2048")
	f.Add("min-gain=-0.5")
	f.Add("gap-ceil=NaN")
	f.Add("psi-ceil=Inf")
	f.Add("ap-floor=1e300")
	f.Add("unknown=1")
	f.Add("k=2,k=3")
	f.Add(",")
	f.Add("k")
	f.Add("=")
	f.Add("psi-ceil=0.2,")

	f.Fuzz(func(t *testing.T, spec string) {
		th, err := ParseThresholds(spec)
		if err != nil {
			return
		}
		if verr := th.Validate(); verr != nil {
			t.Fatalf("accepted %q but Validate fails: %v (th=%+v)", spec, verr, th)
		}
		s := th.String()
		back, err := ParseThresholds(s)
		if err != nil {
			t.Fatalf("String() %q of accepted %q does not re-parse: %v", s, spec, err)
		}
		if back != th {
			t.Fatalf("round trip changed thresholds: %+v -> %q -> %+v", th, s, back)
		}
	})
}

// Package drift closes the serving loop: online monitors that watch the
// champion model drift away from the plant it serves, and the
// champion/challenger retraining machinery that replaces it.
//
// Three monitors run incrementally in the weekly pipeline tick:
//
//   - rolling weekly AP@N of the champion against the tickets that actually
//     arrived (a week's ranking is evaluated once its 4-week label window
//     has closed, so every AP is computed against complete ground truth);
//   - Platt-calibration drift, the reliability gap between the champion's
//     predicted probabilities and the empirical ticket rate on the same
//     matured weeks;
//   - per-feature population-stability statistics (PSI) of the week's
//     measurement distributions against a reference window frozen at
//     startup — the monitor that fires the moment a firmware rollout or a
//     weather front shifts the inputs, four weeks before any label can.
//
// When a monitor trips its threshold for K consecutive weeks, a challenger
// is retrained on the accumulated store and shadow-scores every matured
// week alongside the champion — logged, never served. It is promoted
// through the probe-verified hot-reload path only on measured AP@N gain
// over W shadow weeks, and the demoted champion is kept through a W-week
// holdout so a promotion that regresses rolls back the same way.
//
// Everything is a deterministic fold over (snapshot, weeks observed): same
// feed, same thresholds, same state — the property the replay and restart
// batteries assert bit for bit.
package drift

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"nevermind/internal/data"
	"nevermind/internal/serve"
)

// Thresholds configures the monitors and the retraining state machine.
type Thresholds struct {
	// APFloor trips the AP monitor when a matured week's AP@N falls below
	// APFloor × the frozen baseline AP.
	APFloor float64
	// GapCeil trips the calibration monitor when the reliability gap on a
	// matured week exceeds it.
	GapCeil float64
	// PSICeil trips the distribution monitor when any feature's PSI
	// against the frozen reference exceeds it.
	PSICeil float64
	// K is how many consecutive tripped weeks trigger a retrain.
	K int
	// W is how many shadow weeks a challenger must win over before
	// promotion, and how long the demoted champion is held for rollback.
	W int
	// MinGain is the mean-AP margin a challenger must clear to be
	// promoted (and a demoted champion to be rolled back to).
	MinGain float64
	// BaselineWeeks is how many observed weeks freeze the PSI reference
	// and how many matured weeks freeze the AP baseline.
	BaselineWeeks int
	// Bins sizes the reliability and PSI histograms.
	Bins int
}

// DefaultThresholds returns the nominal operating point.
func DefaultThresholds() Thresholds {
	return Thresholds{
		APFloor:       0.6,
		GapCeil:       0.25,
		PSICeil:       0.5,
		K:             2,
		W:             3,
		MinGain:       0,
		BaselineWeeks: 4,
		Bins:          10,
	}
}

// Validate checks the parameter ranges.
func (t Thresholds) Validate() error {
	bad := func(f string, v any) error { return fmt.Errorf("drift: threshold %s=%v out of range", f, v) }
	if !(t.APFloor > 0 && t.APFloor <= 1) || math.IsNaN(t.APFloor) {
		return bad("ap-floor", t.APFloor)
	}
	if !(t.GapCeil > 0) || math.IsInf(t.GapCeil, 0) || math.IsNaN(t.GapCeil) {
		return bad("gap-ceil", t.GapCeil)
	}
	if !(t.PSICeil > 0) || math.IsInf(t.PSICeil, 0) || math.IsNaN(t.PSICeil) {
		return bad("psi-ceil", t.PSICeil)
	}
	if t.K < 1 || t.K > data.Weeks {
		return bad("k", t.K)
	}
	if t.W < 1 || t.W > data.Weeks {
		return bad("w", t.W)
	}
	if t.MinGain < 0 || math.IsInf(t.MinGain, 0) || math.IsNaN(t.MinGain) {
		return bad("min-gain", t.MinGain)
	}
	if t.BaselineWeeks < 1 || t.BaselineWeeks > data.Weeks {
		return bad("baseline-weeks", t.BaselineWeeks)
	}
	if t.Bins < 2 || t.Bins > 1024 {
		return bad("bins", t.Bins)
	}
	return nil
}

// String renders the thresholds in the form ParseThresholds accepts.
func (t Thresholds) String() string {
	return fmt.Sprintf(
		"ap-floor=%v,gap-ceil=%v,psi-ceil=%v,k=%d,w=%d,min-gain=%v,baseline-weeks=%d,bins=%d",
		t.APFloor, t.GapCeil, t.PSICeil, t.K, t.W, t.MinGain, t.BaselineWeeks, t.Bins)
}

// ParseThresholds parses a comma-separated key=value list over the keys
// ap-floor, gap-ceil, psi-ceil, k, w, min-gain, baseline-weeks and bins;
// missing keys keep their defaults, and "" is exactly DefaultThresholds.
// Unknown keys, malformed values and out-of-range parameters are rejected.
func ParseThresholds(s string) (Thresholds, error) {
	t := DefaultThresholds()
	if s == "" {
		return t, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Thresholds{}, fmt.Errorf("drift: threshold %q is not key=value", kv)
		}
		var err error
		switch key {
		case "ap-floor":
			t.APFloor, err = strconv.ParseFloat(val, 64)
		case "gap-ceil":
			t.GapCeil, err = strconv.ParseFloat(val, 64)
		case "psi-ceil":
			t.PSICeil, err = strconv.ParseFloat(val, 64)
		case "k":
			t.K, err = strconv.Atoi(val)
		case "w":
			t.W, err = strconv.Atoi(val)
		case "min-gain":
			t.MinGain, err = strconv.ParseFloat(val, 64)
		case "baseline-weeks":
			t.BaselineWeeks, err = strconv.Atoi(val)
		case "bins":
			t.Bins, err = strconv.Atoi(val)
		default:
			return Thresholds{}, fmt.Errorf("drift: unknown threshold %q", key)
		}
		if err != nil {
			return Thresholds{}, fmt.Errorf("drift: threshold %s=%q: %v", key, val, err)
		}
	}
	if err := t.Validate(); err != nil {
		return Thresholds{}, err
	}
	return t, nil
}

// Reference is the frozen distribution baseline the PSI monitor compares
// against: per-feature quantile bin edges and reference bin proportions,
// built from the measurement rows of a set of reference weeks.
type Reference struct {
	bins  int
	edges [data.NumBasicFeatures][]float64 // len bins-1, ascending
	ref   [data.NumBasicFeatures][]float64 // len bins, proportions
}

// NewReference freezes a PSI reference over the given weeks of a snapshot.
// Missing measurements are skipped (a dark modem has no distribution to
// shift). Returns nil when the weeks hold no measurements.
func NewReference(sn *serve.Snapshot, weeks []int, bins int) *Reference {
	vals := collectFeatureValues(sn, weeks)
	if len(vals[0]) == 0 {
		return nil
	}
	r := &Reference{bins: bins}
	for f := 0; f < data.NumBasicFeatures; f++ {
		sort.Float64s(vals[f])
		r.edges[f] = quantileEdges(vals[f], bins)
		r.ref[f] = binProportions(vals[f], r.edges[f], bins)
	}
	return r
}

// PSI returns the per-feature population stability index of one week's
// measurement distribution against the reference:
//
//	PSI = Σ_bins (p_i − q_i) · ln(p_i / q_i)
//
// with proportions floored at a small epsilon so empty bins stay finite.
// Returns nil when the week holds no measurements. The statistic is a pure
// function of the week's value multiset, so any ingest order of the week's
// batches yields the same result.
func (r *Reference) PSI(sn *serve.Snapshot, week int) []float64 {
	vals := collectFeatureValues(sn, []int{week})
	if len(vals[0]) == 0 {
		return nil
	}
	out := make([]float64, data.NumBasicFeatures)
	for f := 0; f < data.NumBasicFeatures; f++ {
		sort.Float64s(vals[f])
		p := binProportions(vals[f], r.edges[f], r.bins)
		q := r.ref[f]
		const eps = 1e-4
		psi := 0.0
		for b := 0; b < r.bins; b++ {
			pb, qb := math.Max(p[b], eps), math.Max(q[b], eps)
			psi += (pb - qb) * math.Log(pb/qb)
		}
		out[f] = psi
	}
	return out
}

// collectFeatureValues gathers every non-Missing measurement's value per
// feature over the given weeks, iterating the snapshot's canonical
// ascending line order.
func collectFeatureValues(sn *serve.Snapshot, weeks []int) [data.NumBasicFeatures][]float64 {
	var vals [data.NumBasicFeatures][]float64
	for _, w := range weeks {
		for _, l := range sn.LinesAt(w) {
			m := sn.DS.At(l, w)
			if m == nil || m.Missing {
				continue
			}
			for f := 0; f < data.NumBasicFeatures; f++ {
				vals[f] = append(vals[f], float64(m.F[f]))
			}
		}
	}
	return vals
}

// quantileEdges returns bins-1 ascending cut points over sorted values.
func quantileEdges(sorted []float64, bins int) []float64 {
	edges := make([]float64, bins-1)
	n := len(sorted)
	for i := 1; i < bins; i++ {
		edges[i-1] = sorted[i*n/bins]
	}
	return edges
}

// binProportions histograms sorted values into the edge-defined bins and
// normalises to proportions. Values equal to an edge fall into the higher
// bin, matching sort.SearchFloat64s.
func binProportions(sorted []float64, edges []float64, bins int) []float64 {
	counts := make([]float64, bins)
	for _, v := range sorted {
		b := sort.SearchFloat64s(edges, v)
		if b < len(edges) && edges[b] == v {
			b++
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	n := float64(len(sorted))
	for b := range counts {
		counts[b] /= n
	}
	return counts
}

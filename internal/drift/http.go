package drift

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"nevermind/internal/data"
)

// Params are the validated /v1/drift query parameters.
type Params struct {
	// Weeks limits the history to the most recent N weeks; 0 means all.
	Weeks int
	// Feature, when non-empty, selects one basic feature's per-week PSI
	// series. Must be a Table 2 mnemonic.
	Feature string
}

// ParseParams validates /v1/drift query parameters. Unknown keys,
// non-numeric or negative weeks and unknown feature names are rejected —
// the contract the fuzz target hammers.
func ParseParams(q url.Values) (Params, error) {
	var p Params
	for key, vals := range q {
		if len(vals) != 1 {
			return Params{}, fmt.Errorf("drift: repeated query param %q", key)
		}
		val := vals[0]
		switch key {
		case "weeks":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Params{}, fmt.Errorf("drift: bad weeks %q", val)
			}
			p.Weeks = n
		case "feature":
			if featureIndex(val) < 0 {
				return Params{}, fmt.Errorf("drift: unknown feature %q", val)
			}
			p.Feature = val
		default:
			return Params{}, fmt.Errorf("drift: unknown query param %q", key)
		}
	}
	return p, nil
}

func featureIndex(name string) int {
	for f, n := range data.BasicFeatureNames {
		if n == name {
			return f
		}
	}
	return -1
}

// FeaturePSI is one week's PSI for a selected feature.
type FeaturePSI struct {
	Week int     `json:"week"`
	PSI  float64 `json:"psi"`
}

// Report is the /v1/drift response body.
type Report struct {
	Status     Status       `json:"status"`
	Thresholds string       `json:"thresholds"`
	Weeks      []WeekStats  `json:"weeks"`
	Feature    string       `json:"feature,omitempty"`
	FeaturePSI []FeaturePSI `json:"feature_psi,omitempty"`
}

// Report assembles the endpoint response for the given params.
func (c *Controller) Report(p Params) Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := Report{
		Status:     c.statusLocked(),
		Thresholds: c.th.String(),
		Weeks:      c.historyLocked(p.Weeks),
	}
	if p.Feature != "" {
		f := featureIndex(p.Feature)
		rep.Feature = p.Feature
		rep.FeaturePSI = []FeaturePSI{}
		for _, ws := range rep.Weeks {
			if ws.psi != nil {
				rep.FeaturePSI = append(rep.FeaturePSI, FeaturePSI{Week: ws.Week, PSI: ws.psi[f]})
			}
		}
	}
	return rep
}

// Handler serves GET /v1/drift.
func (c *Controller) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		p, err := ParseParams(r.URL.Query())
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Report(p))
	}
}

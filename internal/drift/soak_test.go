package drift

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"nevermind/internal/sim"
)

// The pinned firmware-soak timeline (deterministic: fixture seed 11,
// champion trained on weeks 22–29, firmware scenario at week 38,
// soakThresholds, trainWeeks=8):
//
//	t38,39 PSI trips (upnmr ~0.38 vs 0.2 ceiling) → retrain #1 anchored at
//	matured week 35, i.e. on the still-clean window [30,35].
//	Shadow weeks 36–38: challenger-1 wins on noise (0.24 vs 0.17) →
//	promoted at t42. Holdout weeks 39–41: the demoted boot champion beats
//	it (0.11 vs 0.09) → rolled back at t45. Baselines stay anchored, so
//	the still-live drift keeps tripping → retrain #2 anchored at matured
//	week 43, on the drifted window [36,43]. Shadow weeks 44–46:
//	challenger-2 dominates (0.79 vs 0.26 mean) → promoted at t50 and
//	serving at the horizon with its holdout in progress.
const (
	soakLo, soakHi   = 30, 51
	firmwareWeek     = 38
	wantTripsTotal   = 14
	wantRetrains     = 2
	wantPromotions   = 2
	wantRollbacks    = 1
	wantPromoteTick  = 12 // tick index of the first non-boot serve (week 42)
	wantFinalModelID = "challenger-2-w43"
)

func firmwareSoakCfg() soakCfg {
	sc := sim.DefaultScenario(sim.ScenarioFirmware)
	sc.Week = firmwareWeek
	return soakCfg{
		scenario:   &sc,
		th:         soakThresholds(),
		trainWeeks: 8,
		lo:         soakLo,
		hi:         soakHi,
	}
}

func wantModelIDs() []string {
	ids := make([]string, 0, soakHi-soakLo+1)
	add := func(id string, n int) {
		for i := 0; i < n; i++ {
			ids = append(ids, id)
		}
	}
	add("boot", 12)            // weeks 30–41
	add("challenger-1-w35", 3) // weeks 42–44: the bad promotion
	add("boot", 5)             // weeks 45–49: rolled back
	add(wantFinalModelID, 2)   // weeks 50–51: the good promotion
	return ids
}

// TestDriftSoak is the seeded end-to-end drift soak: a firmware-rollout
// scenario through the full pipeline + controller, asserting the monitor
// trips on the scenario week, shadow scoring never touches served bytes,
// promotion happens only on measured AP gain, rollback fires when a
// promotion regresses, and the whole run is bit-identical across replays.
func TestDriftSoak(t *testing.T) {
	cfg := firmwareSoakCfg()
	cfg.withControl = true
	res := runDriftSoak(t, cfg)

	// The monitor trips on the firmware week, for a distribution-shift
	// reason — the PSI monitor is the first responder, before any label
	// matures under the drift.
	var firstTrip *WeekStats
	for i := range res.history {
		if res.history[i].Tripped {
			firstTrip = &res.history[i]
			break
		}
	}
	if firstTrip == nil {
		t.Fatal("monitor never tripped")
	}
	if firstTrip.Week != firmwareWeek {
		t.Fatalf("first trip at week %d, want %d", firstTrip.Week, firmwareWeek)
	}
	if len(firstTrip.TripReasons) == 0 || !strings.HasPrefix(firstTrip.TripReasons[0], "psi:") {
		t.Fatalf("first trip reasons %v, want a psi: reason", firstTrip.TripReasons)
	}
	for i := range res.history {
		ws := &res.history[i]
		if ws.Week < firmwareWeek && ws.Tripped {
			t.Fatalf("week %d tripped before the scenario started: %v", ws.Week, ws.TripReasons)
		}
	}

	// The full controller trajectory: two retrains, a bad promotion that
	// rolls back, a good one that sticks.
	st := res.status
	if st.TripsTotal != wantTripsTotal || st.Retrains != wantRetrains ||
		st.Promotions != wantPromotions || st.Rollbacks != wantRollbacks ||
		st.Rejections != 0 || st.RetrainFailures != 0 || st.PromoteFailures != 0 {
		t.Fatalf("final status off the pinned timeline: %+v", st)
	}
	if st.ModelID != wantFinalModelID || st.State != "holdout" {
		t.Fatalf("final serving state %s/%s, want %s/holdout", st.ModelID, st.State, wantFinalModelID)
	}
	if got, want := res.modelIDs, wantModelIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("served model IDs:\n got %v\nwant %v", got, want)
	}
	// Three generation swaps: promote, rollback, promote.
	if res.reloads != 3 {
		t.Fatalf("model reloads = %d, want 3", res.reloads)
	}

	// Shadow scoring never touches served responses: every tick before the
	// first promotion, /v1/score bytes are identical to the controller-free
	// twin's — including the three ticks where a challenger was actively
	// shadow-scoring. The first promoted tick must differ (the swap is
	// real).
	if res.promoteTick != wantPromoteTick {
		t.Fatalf("first non-boot tick = %d, want %d", res.promoteTick, wantPromoteTick)
	}
	for i := 0; i < res.promoteTick; i++ {
		if res.scores[i] != res.controlScores[i] {
			t.Fatalf("tick %d (week %d): served bytes diverged from the controller-free twin before any promotion:\n drift: %s\n ctrl:  %s",
				i, soakLo+i, res.scores[i], res.controlScores[i])
		}
	}
	if res.scores[res.promoteTick] == res.controlScores[res.promoteTick] {
		t.Fatal("promotion did not change served bytes")
	}

	// Promotion only on measured AP gain: at both promotions the
	// challenger's mean shadow AP over the W weeks exceeded the champion's
	// over the same weeks.
	assertShadowGain := func(weeks []int) {
		var champ, chal float64
		for _, w := range weeks {
			ws := historyWeek(t, res.history, w)
			if !ws.Shadowed {
				t.Fatalf("week %d was not shadow-scored", w)
			}
			champ += ws.AP
			chal += ws.ChallengerAP
		}
		if chal <= champ {
			t.Fatalf("promotion over weeks %v without AP gain: challenger %.4f <= champion %.4f",
				weeks, chal, champ)
		}
	}
	assertShadowGain([]int{36, 37, 38})
	assertShadowGain([]int{44, 45, 46})
	// And the rollback really was a measured regression: over the holdout
	// weeks the demoted champion out-scored the promoted model.
	var prom, dem float64
	for _, w := range []int{39, 40, 41} {
		ws := historyWeek(t, res.history, w)
		if !ws.Holdout {
			t.Fatalf("week %d was not holdout-scored", w)
		}
		prom += ws.AP
		dem += ws.DemotedAP
	}
	if dem <= prom {
		t.Fatalf("rollback without regression: demoted %.4f <= promoted %.4f", dem, prom)
	}

	// /v1/drift and /healthz surface the loop's state.
	var report struct {
		Status Status      `json:"status"`
		Weeks  []WeekStats `json:"weeks"`
	}
	if err := json.Unmarshal([]byte(res.driftJSON), &report); err != nil {
		t.Fatalf("/v1/drift: %v in %s", err, res.driftJSON)
	}
	if report.Status != st || len(report.Weeks) != soakHi-soakLo+1 {
		t.Fatalf("/v1/drift status %+v (%d weeks), want %+v (%d weeks)",
			report.Status, len(report.Weeks), st, soakHi-soakLo+1)
	}
	var hz map[string]any
	if err := json.Unmarshal([]byte(res.healthz), &hz); err != nil {
		t.Fatalf("/healthz: %v in %s", err, res.healthz)
	}
	if hz["model_id"] != wantFinalModelID {
		t.Fatalf("/healthz model_id = %v, want %s", hz["model_id"], wantFinalModelID)
	}
	dr, _ := hz["drift"].(map[string]any)
	if dr == nil || dr["state"] != "holdout" || dr["model_id"] != wantFinalModelID {
		t.Fatalf("/healthz drift block = %v", hz["drift"])
	}

	// The loop's lifecycle shows up in the flight recorder: every stage of
	// trip→retrain→shadow→promote→holdout→rollback left spans in /v1/trace.
	for _, stage := range []string{"monitor", "retrain", "shadow", "promote", "holdout", "rollback"} {
		if !strings.Contains(res.traceJSON, `"stage":"`+stage+`"`) {
			t.Fatalf("/v1/trace has no %q span", stage)
		}
	}

	// Bit-identical replay: a second full run reproduces every observable —
	// history, status, served bytes, model generations, endpoint bodies.
	// Only the flight recorder is exempt: its spans carry wall-clock
	// timestamps.
	res2 := runDriftSoak(t, cfg)
	res2.traceJSON = res.traceJSON
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("two replays of the drift soak diverged")
	}
}

// TestDriftSoakNoDrift is the control: the same horizon and thresholds with
// no scenario must never trip, never retrain, and serve the boot model
// byte-identically throughout.
func TestDriftSoakNoDrift(t *testing.T) {
	cfg := firmwareSoakCfg()
	cfg.scenario = nil
	cfg.withControl = true
	res := runDriftSoak(t, cfg)

	st := res.status
	if st.TripsTotal != 0 || st.Retrains != 0 || st.Promotions != 0 ||
		st.Rollbacks != 0 || st.ConsecutiveTrips != 0 {
		t.Fatalf("no-drift run moved: %+v", st)
	}
	if st.State != "watching" || st.ModelID != "boot" {
		t.Fatalf("no-drift final state %s/%s, want watching/boot", st.State, st.ModelID)
	}
	for i, id := range res.modelIDs {
		if id != "boot" {
			t.Fatalf("tick %d served %s in the no-drift run", i, id)
		}
	}
	if res.reloads != 0 {
		t.Fatalf("no-drift run reloaded %d times", res.reloads)
	}
	for i := range res.scores {
		if res.scores[i] != res.controlScores[i] {
			t.Fatalf("tick %d: monitoring alone changed served bytes", i)
		}
	}
	for i := range res.history {
		if res.history[i].Tripped || res.history[i].Shadowed || res.history[i].Holdout {
			t.Fatalf("no-drift week %d has loop activity: %+v", res.history[i].Week, res.history[i])
		}
	}
}

func historyWeek(t *testing.T, hist []WeekStats, week int) *WeekStats {
	t.Helper()
	for i := range hist {
		if hist[i].Week == week {
			return &hist[i]
		}
	}
	t.Fatalf("week %d missing from history", week)
	return nil
}

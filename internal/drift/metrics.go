package drift

import "nevermind/internal/obs"

// BindMetrics registers the nevermind_drift_* family on a registry. Every
// series reads live controller state at scrape time, so the export is
// always consistent with /v1/drift.
func (c *Controller) BindMetrics(reg *obs.Registry) {
	counter := func(name, help string, fn func() int) {
		reg.CounterFunc(name, help, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(fn())
		})
	}
	counter("nevermind_drift_trips_total", "Tripped monitor weeks.", func() int { return c.tripsTotal })
	counter("nevermind_drift_retrains_total", "Challengers trained.", func() int { return c.retrains })
	counter("nevermind_drift_retrain_failures_total", "Failed challenger training attempts.", func() int { return c.retrainFailures })
	counter("nevermind_drift_promotions_total", "Challengers promoted to champion.", func() int { return c.promotions })
	counter("nevermind_drift_promote_failures_total", "Failed promotion/rollback reloads.", func() int { return c.promoteFailures })
	counter("nevermind_drift_rejections_total", "Challengers discarded after shadowing.", func() int { return c.rejections })
	counter("nevermind_drift_rollbacks_total", "Promotions rolled back.", func() int { return c.rollbacks })

	gauge := func(name, help string, fn func() float64) {
		reg.GaugeFunc(name, help, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return fn()
		})
	}
	gauge("nevermind_drift_consecutive_trips", "Consecutive tripped weeks.", func() float64 {
		return float64(c.consec)
	})
	gauge("nevermind_drift_shadow_weeks", "Shadow (or holdout) weeks accumulated.", func() float64 {
		if c.challenger != nil {
			return float64(len(c.shadow))
		}
		if c.demoted != nil {
			return float64(len(c.holdout))
		}
		return 0
	})
	gauge("nevermind_drift_baseline_ap", "Frozen AP@N baseline (0 until frozen).", func() float64 {
		return c.baselineAP
	})
	gauge("nevermind_drift_ap", "Latest matured week's champion AP@N.", func() float64 {
		return c.latestLocked(func(ws *WeekStats) (float64, bool) { return ws.AP, ws.Evaluated })
	})
	gauge("nevermind_drift_gap", "Latest matured week's reliability gap.", func() float64 {
		return c.latestLocked(func(ws *WeekStats) (float64, bool) { return ws.Gap, ws.Evaluated })
	})
	gauge("nevermind_drift_psi_max", "Latest observed week's max per-feature PSI.", func() float64 {
		return c.latestLocked(func(ws *WeekStats) (float64, bool) { return ws.PSIMax, ws.PSIEvaluated })
	})
	gauge("nevermind_drift_state", "Loop state: 0 watching, 1 shadowing, 2 holdout.", func() float64 {
		switch {
		case c.challenger != nil:
			return 1
		case c.demoted != nil:
			return 2
		}
		return 0
	})
}

// latestLocked scans backward for the most recent week where pick reports
// a value. Callers hold c.mu.
func (c *Controller) latestLocked(pick func(*WeekStats) (float64, bool)) float64 {
	if !c.haveFirst {
		return 0
	}
	for w := c.lastWeek; w >= c.firstWeek; w-- {
		if ws, ok := c.weeks[w]; ok {
			if v, ok := pick(ws); ok {
				return v
			}
		}
	}
	return 0
}

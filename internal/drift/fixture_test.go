package drift

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
)

// The drift fixture: a small simulated year plus a champion trained on
// clean mid-year weeks — frozen before the scenario packs disturb the
// plant, so the drift the monitors see is real model/world divergence. The
// champion is saved once and re-loaded per run so runs never share encode
// caches.
var (
	fixtureDS   *data.Dataset
	fixturePred string // saved champion path
)

func driftFixture(t *testing.T) (*data.Dataset, string) {
	t.Helper()
	if fixtureDS == nil {
		res, err := sim.Run(sim.DefaultConfig(700, 11))
		if err != nil {
			t.Fatal(err)
		}
		fixtureDS = res.Dataset

		cfg := core.DefaultPredictorConfig(fixtureDS.NumLines, 11)
		cfg.Rounds = 12
		cfg.MaxSelectExamples = 6000
		pred, err := core.TrainPredictor(fixtureDS, features.WeekRange(22, 29), cfg)
		if err != nil {
			t.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "drift-fixture-")
		if err != nil {
			t.Fatal(err)
		}
		fixturePred = filepath.Join(dir, "champion.gob.gz")
		if err := pred.Save(fixturePred); err != nil {
			t.Fatal(err)
		}
	}
	return fixtureDS, fixturePred
}

// soakThresholds is the operating point every soak runs at; pinned here so
// the expected trip/retrain/promotion timeline is stable across tests. The
// PSI ceiling sits well above the fixture's clean-week jitter (~0.03) and
// well below the firmware scenario's shift (~0.35). At 700 lines the
// weekly AP@N is far too noisy for a relative floor (clean weeks range
// 0.0065–0.45), so the floor is dropped to where it cannot trip — the
// distribution monitor is the crisp first responder at this fixture
// scale, and the AP trip path is exercised by unit tests instead.
func soakThresholds() Thresholds {
	th := DefaultThresholds()
	th.PSICeil = 0.2
	th.APFloor = 0.01
	return th
}

// soakCfg parameterises one drift soak run.
type soakCfg struct {
	scenario   *sim.Scenario
	th         Thresholds
	trainWeeks int
	hooks      *FaultHooks
	lo, hi     int
	// withControl also steps a controller-free twin stack in lockstep and
	// captures its per-tick /v1/score bytes, for the shadowing
	// byte-identity assertion.
	withControl bool
	// wrapFeed, when set, wraps the assembled feed (after any scenario) —
	// the permutation property tests use it to shuffle within-batch record
	// order.
	wrapFeed func(serve.Source) serve.Source
	logf     func(string, ...any)
}

// soakRes captures everything a run served, for replay comparison.
type soakRes struct {
	status        Status
	history       []WeekStats
	scores        []string // per-tick /v1/score body, fixed example set
	controlScores []string // same, from the controller-free twin
	modelIDs      []string // serving generation after each tick
	promoteTick   int      // index of the first tick served by a non-boot model; -1 if none
	driftJSON     string   // final /v1/drift body
	healthz       string   // final /healthz body (uptime stripped)
	traceJSON     string   // final /v1/trace body — NOT replay-compared (wall-clock timestamps)
	reloads       int64
}

// scoreProbe is the fixed example set POSTed to /v1/score every tick.
func scoreProbe(week int) string {
	var sb strings.Builder
	sb.WriteString(`{"examples":[`)
	for l := 0; l < 10; l++ {
		if l > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"line":%d,"week":%d}`, l*7, week)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

func postJSON(t *testing.T, h http.Handler, path, body string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func getBody(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// newFeed assembles the configured week stream: simulator source, optional
// scenario pack, optional wrapper.
func newFeed(t *testing.T, ds *data.Dataset, cfg soakCfg) serve.Source {
	t.Helper()
	src, err := sim.NewSource(ds, cfg.lo, cfg.hi)
	if err != nil {
		t.Fatal(err)
	}
	var feed serve.Source = serve.SimFeed(src)
	if cfg.scenario != nil {
		ss, err := sim.NewScenarioSource(src, *cfg.scenario)
		if err != nil {
			t.Fatal(err)
		}
		feed = ss
	}
	if cfg.wrapFeed != nil {
		feed = cfg.wrapFeed(feed)
	}
	return feed
}

// runDriftSoak drives the full stack — store, snapshot cache, HTTP API,
// pipeline, drift controller — through the configured weeks, probing
// /v1/score after every tick.
func runDriftSoak(t *testing.T, cfg soakCfg) soakRes {
	t.Helper()
	ds, predPath := driftFixture(t)

	newStack := func(withCtrl bool) (*serve.Server, *serve.Pipeline, *Controller) {
		pred, err := core.LoadPredictor(predPath)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(serve.Config{Predictor: pred, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		feed := newFeed(t, ds, cfg)
		var ctrl *Controller
		if withCtrl {
			ctrl, err = New(Config{
				Server:     srv,
				Thresholds: cfg.th,
				TrainWeeks: cfg.trainWeeks,
				Hooks:      cfg.hooks,
				Logf:       cfg.logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctrl.BindMetrics(srv.Registry())
			srv.MountDrift(ctrl.Handler())
			srv.SetDriftStatus(ctrl.ServeStatus)
		}
		pcfg := serve.PipelineConfig{
			Source: feed,
			Retry:  serve.RetryConfig{MaxAttempts: 8, Seed: 5},
			Sleep:  func(time.Duration) {},
		}
		if ctrl != nil {
			pcfg.OnSnapshot = ctrl.ObserveWeek
		}
		pl, err := serve.NewPipeline(srv, pcfg)
		if err != nil {
			t.Fatal(err)
		}
		return srv, pl, ctrl
	}

	srv, pl, ctrl := newStack(true)
	var ctlSrv *serve.Server
	var ctlPl *serve.Pipeline
	if cfg.withControl {
		ctlSrv, ctlPl, _ = newStack(false)
	}

	res := soakRes{promoteTick: -1}
	for {
		ok, err := pl.Step()
		if err != nil {
			t.Fatalf("pipeline died mid-soak: %v", err)
		}
		if !ok {
			break
		}
		week := srv.Store().LatestWeek()
		code, body := postJSON(t, srv.Handler(), "/v1/score", scoreProbe(week))
		if code != http.StatusOK {
			t.Fatalf("week %d score: %d %s", week, code, body)
		}
		res.scores = append(res.scores, body)
		id := srv.Models().ID
		res.modelIDs = append(res.modelIDs, id)
		if id != "boot" && res.promoteTick < 0 {
			res.promoteTick = len(res.modelIDs) - 1
		}
		if cfg.withControl {
			cok, cerr := ctlPl.Step()
			if cerr != nil || !cok {
				t.Fatalf("control pipeline desynced at week %d: ok=%v err=%v", week, cok, cerr)
			}
			ccode, cbody := postJSON(t, ctlSrv.Handler(), "/v1/score", scoreProbe(week))
			if ccode != http.StatusOK {
				t.Fatalf("week %d control score: %d %s", week, ccode, cbody)
			}
			res.controlScores = append(res.controlScores, cbody)
		}
	}
	if cfg.withControl {
		if ok, _ := ctlPl.Step(); ok {
			t.Fatal("control pipeline outlived the main run")
		}
	}

	res.status = ctrl.Status()
	res.history = ctrl.History()
	var code int
	if code, res.driftJSON = getBody(t, srv.Handler(), "/v1/drift"); code != http.StatusOK {
		t.Fatalf("/v1/drift: %d %s", code, res.driftJSON)
	}
	if code, res.healthz = getBody(t, srv.Handler(), "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	// Canonicalise /healthz: drop the wall-clock uptime so replays compare
	// bit-identically (json.Marshal of a map sorts keys).
	var hz map[string]any
	if err := json.Unmarshal([]byte(res.healthz), &hz); err != nil {
		t.Fatalf("/healthz body: %v", err)
	}
	delete(hz, "uptime_seconds")
	canon, err := json.Marshal(hz)
	if err != nil {
		t.Fatal(err)
	}
	res.healthz = string(canon)
	if code, res.traceJSON = getBody(t, srv.Handler(), "/v1/trace"); code != http.StatusOK {
		t.Fatalf("/v1/trace: %d", code)
	}
	res.reloads = srv.Registry().Counter("nevermind_model_reloads_total", "").Value()
	return res
}

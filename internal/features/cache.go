package features

import (
	"fmt"
	"sync"

	"nevermind/internal/data"
	"nevermind/internal/ml"
)

// Cache memoizes the expensive stages of the dsl→features→quantize pipeline
// across experiments: base feature encodes, their quadratic extensions, and
// fully binned design matrices. Every eval figure walks the same weeks of
// the same dataset, so fig4/fig6–fig9/table5/trend otherwise redo identical
// feature extraction many times over.
//
// Keys fingerprint everything a cached value depends on. Encoded matrices
// are keyed by (dataset generation, examples hash, history window) — note
// the hash covers the FULL example list, not per-week pieces, because the
// encoder's missing-line fallback vector averages over the examples' whole
// week-set (per-week concatenation would change results). The dataset
// generation (data.Dataset.Generation) is how a mutable source like the
// serving store invalidates entries: each ingest produces snapshots with a
// new generation, so stale encodes of the old contents can never be served.
// Binned matrices additionally key on the consumer's column schema and the
// quantizer's content fingerprint (ml.Quantizer.Fingerprint — pointer
// identity would be unsafe across retrains).
//
// Entries are bounded by an LRU policy (default 24). Cached values are
// shared, never copied: all consumers treat encoded/binned matrices as
// immutable after construction. A nil *Cache is valid and disables caching.
type Cache struct {
	mu        sync.Mutex
	max       int
	vals      map[string]any
	order     []string // least recently used first
	hits      int
	misses    int
	evictions int
}

// DefaultCacheEntries bounds a cache built with NewCache(0). A full
// experiment sweep touches roughly a dozen distinct matrices; 24 leaves
// headroom without holding more than a few hundred MB at paper scale.
const DefaultCacheEntries = 24

// NewCache returns a cache bounded to maxEntries (0 or negative = default).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &Cache{max: maxEntries, vals: make(map[string]any)}
}

// Stats returns the lookup counters (a lookup on a nil cache counts
// nothing). Used by tests to prove experiments actually share entries.
func (c *Cache) Stats() (hits, misses int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// CacheStats is the full counter snapshot a monitoring surface exports
// (the daemon's /debug/vars reports one per process).
type CacheStats struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Evictions int `json:"evictions"`
	Entries   int `json:"entries"`
}

// StatsDetail returns every counter at once; nil caches report zeros.
func (c *Cache) StatsDetail() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.vals)}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vals)
}

func (c *Cache) get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vals[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.touch(key)
	return v, true
}

func (c *Cache) put(key string, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.vals[key]; ok {
		c.vals[key] = v
		c.touch(key)
		return
	}
	c.vals[key] = v
	c.order = append(c.order, key)
	for len(c.vals) > c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.vals, oldest)
		c.evictions++
	}
}

// touch moves key to the most-recent end; callers hold c.mu. Linear scan:
// the cache holds tens of entries at most.
func (c *Cache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = key
			return
		}
	}
}

// GetBinned looks up a quantized design matrix.
func (c *Cache) GetBinned(key string) (*ml.BinnedMatrix, bool) {
	v, ok := c.get(key)
	if !ok {
		return nil, false
	}
	bm, ok := v.(*ml.BinnedMatrix)
	return bm, ok
}

// PutBinned stores a quantized design matrix.
func (c *Cache) PutBinned(key string, bm *ml.BinnedMatrix) { c.put(key, bm) }

// ExamplesKey fingerprints an example list (FNV-1a over the (line, week)
// sequence) for cache keying. Order-sensitive, as encoding is.
func ExamplesKey(examples []Example) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	for _, ex := range examples {
		mix(uint64(ex.Line))
		mix(uint64(uint32(ex.Week)))
	}
	return h
}

// EncodeCached is Encode with memoization: the base encode is cached once
// per (examples, history window) and the quadratic extension layered on top
// under its own key, so quadratic and non-quadratic consumers of the same
// examples share the base work. A nil cache degrades to plain Encode.
// Returned matrices are shared — treat them as immutable.
func EncodeCached(c *Cache, ds *data.Dataset, ix *data.TicketIndex, examples []Example, cfg Config) (*Encoded, error) {
	if c == nil {
		return Encode(ds, ix, examples, cfg)
	}
	cfg = cfg.defaults()
	baseKey := fmt.Sprintf("enc|g%d|%016x|h%d", ds.Generation, ExamplesKey(examples), cfg.HistoryWeeks)
	if !cfg.Quadratic {
		if v, ok := c.get(baseKey); ok {
			return v.(*Encoded), nil
		}
		enc, err := encodeBase(ds, ix, examples, cfg)
		if err != nil {
			return nil, err
		}
		c.put(baseKey, enc)
		return enc, nil
	}
	quadKey := baseKey + "|quad"
	if v, ok := c.get(quadKey); ok {
		return v.(*Encoded), nil
	}
	var base *Encoded
	if v, ok := c.get(baseKey); ok {
		base = v.(*Encoded)
	} else {
		enc, err := encodeBase(ds, ix, examples, cfg)
		if err != nil {
			return nil, err
		}
		c.put(baseKey, enc)
		base = enc
	}
	enc := withQuadratic(base)
	c.put(quadKey, enc)
	return enc, nil
}

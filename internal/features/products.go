package features

import (
	"fmt"

	"nevermind/internal/ml"
)

// Product features (Table 3, "derived"): pairwise products that let the
// linear BStump model see interactions between features. The full cross of
// all history+customer features is quadratic in size, so the pipeline scores
// candidate pairs on a subsample and materialises only the survivors
// (Fig. 4c selects products with AP(20K) > 0.3).

// Pair identifies a product of two encoded columns by index.
type Pair struct{ A, B int }

// AllPairs returns every unordered pair of the given column indices.
func AllPairs(indices []int) []Pair {
	var out []Pair
	for i := 0; i < len(indices); i++ {
		for j := i + 1; j < len(indices); j++ {
			out = append(out, Pair{indices[i], indices[j]})
		}
	}
	return out
}

// ProductColumns materialises the product columns for the pairs.
func ProductColumns(enc *Encoded, pairs []Pair) ([]ml.Column, error) {
	out := make([]ml.Column, 0, len(pairs))
	for _, p := range pairs {
		if p.A < 0 || p.A >= len(enc.Cols) || p.B < 0 || p.B >= len(enc.Cols) {
			return nil, fmt.Errorf("features: product pair (%d,%d) out of range", p.A, p.B)
		}
		a, b := enc.Cols[p.A], enc.Cols[p.B]
		v := make([]float32, len(a.Values))
		for i := range v {
			v[i] = a.Values[i] * b.Values[i]
		}
		out = append(out, ml.Column{
			Name:        "prod:" + a.Name + "*" + b.Name,
			Categorical: a.Categorical && b.Categorical, // product of indicators is an indicator
			Values:      v,
		})
	}
	return out, nil
}

// AppendColumns adds extra columns (e.g. selected products) to the encoded
// set under the given group.
func (e *Encoded) AppendColumns(cols []ml.Column, g Group) error {
	n := len(e.Examples)
	for _, c := range cols {
		if len(c.Values) != n {
			return fmt.Errorf("features: column %q has %d values for %d examples", c.Name, len(c.Values), n)
		}
		e.Cols = append(e.Cols, c)
		e.Groups = append(e.Groups, g)
	}
	return nil
}

// Subset returns a new Encoded containing only the chosen columns (shared
// backing arrays; cheap).
func (e *Encoded) Subset(indices []int) (*Encoded, error) {
	out := &Encoded{Examples: e.Examples}
	for _, i := range indices {
		if i < 0 || i >= len(e.Cols) {
			return nil, fmt.Errorf("features: subset index %d out of range", i)
		}
		out.Cols = append(out.Cols, e.Cols[i])
		out.Groups = append(out.Groups, e.Groups[i])
	}
	return out, nil
}

// SubsetRows returns a new Encoded with only the chosen examples (copies).
func (e *Encoded) SubsetRows(rows []int) (*Encoded, error) {
	out := &Encoded{
		Cols:     make([]ml.Column, len(e.Cols)),
		Groups:   append([]Group(nil), e.Groups...),
		Examples: make([]Example, len(rows)),
	}
	for ri, r := range rows {
		if r < 0 || r >= len(e.Examples) {
			return nil, fmt.Errorf("features: row %d out of range", r)
		}
		out.Examples[ri] = e.Examples[r]
	}
	for ci, c := range e.Cols {
		v := make([]float32, len(rows))
		for ri, r := range rows {
			v[ri] = c.Values[r]
		}
		out.Cols[ci] = ml.Column{Name: c.Name, Categorical: c.Categorical, Values: v}
	}
	return out, nil
}

package features

import (
	"nevermind/internal/data"
)

// Labels computes the ticket-prediction target of §4.1 for each example:
// Tkt(u, t, T) = 1 iff the line files a customer-edge ticket within
// windowDays after the example week's Saturday (exclusive of the Saturday
// itself). The paper uses T = 4 weeks.
func Labels(ix *data.TicketIndex, examples []Example, windowDays int) []bool {
	out := make([]bool, len(examples))
	for i, ex := range examples {
		out[i] = ix.Within(ex.Line, data.SaturdayOf(ex.Week), windowDays)
	}
	return out
}

// ExamplesForWeeks enumerates every (line, week) pair for the given weeks,
// week-major — the full-population ranking sets of the evaluation.
func ExamplesForWeeks(ds *data.Dataset, weeks []int) []Example {
	out := make([]Example, 0, len(weeks)*ds.NumLines)
	for _, w := range weeks {
		for l := 0; l < ds.NumLines; l++ {
			out = append(out, Example{Line: data.LineID(l), Week: w})
		}
	}
	return out
}

// WeekRange returns [lo, hi] inclusive as a slice.
func WeekRange(lo, hi int) []int {
	var out []int
	for w := lo; w <= hi; w++ {
		out = append(out, w)
	}
	return out
}

// Package features encodes the sparse weekly line-measurement history into
// the learning features of Table 3 (§4.2): per-example columns for the
// current basic measurements, short-term deltas, long-term time-series
// deviations, customer/profile context, and the derived quadratic and
// product features whose explicit encoding the paper credits for the final
// accuracy boost (BStump ignores feature interactions, so covariance must be
// spelled out as extra features).
package features

import (
	"fmt"
	"math"

	"nevermind/internal/data"
	"nevermind/internal/ml"
)

// Example is one prediction instance: a line observed at a measurement week.
// Its features may look at history up to and including Week; its label looks
// at tickets strictly after Week's Saturday.
type Example struct {
	Line data.LineID
	Week int
}

// Group classifies columns by their Table 3 row.
type Group uint8

const (
	GroupBasic   Group = iota // current week's Table 2 features
	GroupDelta                // change vs previous week
	GroupTS                   // standardized deviation vs long-term history
	GroupProfile              // features relative to the subscriber profile
	GroupTicket               // time since the most recent ticket
	GroupModem                // modem-off rate over history
	GroupQuad                 // squares of history+customer features
	GroupProd                 // pairwise products
)

func (g Group) String() string {
	switch g {
	case GroupBasic:
		return "basic"
	case GroupDelta:
		return "delta"
	case GroupTS:
		return "ts"
	case GroupProfile:
		return "profile"
	case GroupTicket:
		return "ticket"
	case GroupModem:
		return "modem"
	case GroupQuad:
		return "quad"
	case GroupProd:
		return "prod"
	default:
		return fmt.Sprintf("Group(%d)", uint8(g))
	}
}

// Config tunes encoding.
type Config struct {
	// HistoryWeeks is the long-term window for time-series and modem
	// features (default 26 — the paper uses the first seven months of the
	// year as history).
	HistoryWeeks int
	// Quadratic adds squares of the continuous history+customer features.
	Quadratic bool
}

func (c Config) defaults() Config {
	if c.HistoryWeeks == 0 {
		c.HistoryWeeks = 26
	}
	return c
}

// Encoded is the example-aligned design matrix, column-major.
type Encoded struct {
	Cols     []ml.Column
	Groups   []Group
	Examples []Example
}

// ColumnIndex returns the index of a named column, or -1.
func (e *Encoded) ColumnIndex(name string) int {
	for i, c := range e.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// IndicesOfGroups returns the column indices belonging to any of the groups.
func (e *Encoded) IndicesOfGroups(groups ...Group) []int {
	want := map[Group]bool{}
	for _, g := range groups {
		want[g] = true
	}
	var out []int
	for i, g := range e.Groups {
		if want[g] {
			out = append(out, i)
		}
	}
	return out
}

// Encode builds the Table 3 feature columns for the examples.
func Encode(ds *data.Dataset, ix *data.TicketIndex, examples []Example, cfg Config) (*Encoded, error) {
	cfg = cfg.defaults()
	enc, err := encodeBase(ds, ix, examples, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Quadratic {
		enc = withQuadratic(enc)
	}
	return enc, nil
}

// encodeBase builds every non-derived column (the quadratic step is split
// out so EncodeCached can share one base encode between quadratic and
// non-quadratic callers).
func encodeBase(ds *data.Dataset, ix *data.TicketIndex, examples []Example, cfg Config) (*Encoded, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("features: no examples")
	}
	for _, ex := range examples {
		if int(ex.Line) < 0 || int(ex.Line) >= ds.NumLines || ex.Week < 0 || ex.Week >= data.Weeks {
			return nil, fmt.Errorf("features: example (%d,%d) out of range", ex.Line, ex.Week)
		}
	}
	if ix == nil {
		ix = data.NewTicketIndex(ds)
	}
	n := len(examples)
	enc := &Encoded{Examples: examples}

	addCol := func(name string, g Group, categorical bool) []float32 {
		v := make([]float32, n)
		enc.Cols = append(enc.Cols, ml.Column{Name: name, Categorical: categorical, Values: v})
		enc.Groups = append(enc.Groups, g)
		return v
	}

	// Allocate columns.
	basic := make([][]float32, data.NumBasicFeatures)
	delta := make([][]float32, data.NumBasicFeatures)
	ts := make([][]float32, data.NumBasicFeatures)
	for f := 0; f < data.NumBasicFeatures; f++ {
		name := data.BasicFeatureNames[f]
		basic[f] = addCol("basic:"+name, GroupBasic, data.CategoricalBasicFeature(f))
	}
	for f := 0; f < data.NumBasicFeatures; f++ {
		delta[f] = addCol("delta:"+data.BasicFeatureNames[f], GroupDelta, false)
	}
	for f := 0; f < data.NumBasicFeatures; f++ {
		ts[f] = addCol("ts:"+data.BasicFeatureNames[f], GroupTS, false)
	}
	profDn := addCol("profile:dnbr_ratio", GroupProfile, false)
	profUp := addCol("profile:upbr_ratio", GroupProfile, false)
	profMaxDn := addCol("profile:dnmax_ratio", GroupProfile, false)
	profMaxUp := addCol("profile:upmax_ratio", GroupProfile, false)
	profTier := make([][]float32, len(data.Profiles))
	for p := range data.Profiles {
		profTier[p] = addCol("profile:is_"+data.Profiles[p].Name, GroupProfile, true)
	}
	ticketDays := addCol("ticket:days_since_last", GroupTicket, false)
	modemOff := addCol("modem:off_rate", GroupModem, false)

	// Fallback values for lines never measured in the window: per-feature
	// medians are overkill; the all-lines mean over the examples' weeks is
	// stable and cheap. Computed lazily from present records.
	fallback := fallbackVector(ds, examples)

	cur := make([]float32, data.NumBasicFeatures)
	prev := make([]float32, data.NumBasicFeatures)
	for i, ex := range examples {
		imputeAt(ds, ex.Line, ex.Week, cfg.HistoryWeeks, fallback, cur)
		if ex.Week > 0 {
			imputeAt(ds, ex.Line, ex.Week-1, cfg.HistoryWeeks, fallback, prev)
		} else {
			copy(prev, cur)
		}
		for f := 0; f < data.NumBasicFeatures; f++ {
			basic[f][i] = cur[f]
			delta[f][i] = cur[f] - prev[f]
		}

		// Long-term history stats over present records.
		lo := ex.Week - cfg.HistoryWeeks
		if lo < 0 {
			lo = 0
		}
		var cnt float64
		var sum, sumsq [data.NumBasicFeatures]float64
		missing := 0
		histN := 0
		for w := lo; w < ex.Week; w++ {
			histN++
			m := ds.At(ex.Line, w)
			if m.Missing {
				missing++
				continue
			}
			cnt++
			for f := 0; f < data.NumBasicFeatures; f++ {
				v := float64(m.F[f])
				sum[f] += v
				sumsq[f] += v * v
			}
		}
		for f := 0; f < data.NumBasicFeatures; f++ {
			if cnt >= 3 {
				mean := sum[f] / cnt
				variance := sumsq[f]/cnt - mean*mean
				if variance < 1e-6 {
					variance = 1e-6
				}
				ts[f][i] = float32((float64(cur[f]) - mean) / math.Sqrt(variance))
			}
		}

		prof := ds.Profile(ex.Line)
		profDn[i] = cur[data.FDnBR] / float32(prof.DnKbps)
		profUp[i] = cur[data.FUpBR] / float32(prof.UpKbps)
		profMaxDn[i] = cur[data.FDnMaxAttainFBR] / float32(prof.DnKbps)
		profMaxUp[i] = cur[data.FUpMaxAttainFBR] / float32(prof.UpKbps)
		profTier[ds.ProfileOf[ex.Line]][i] = 1

		day := data.SaturdayOf(ex.Week)
		if last, ok := ix.Prev(ex.Line, day); ok {
			ticketDays[i] = float32(day - last)
		} else {
			ticketDays[i] = 400 // sentinel: beyond any in-year gap
		}
		if histN > 0 {
			modemOff[i] = float32(missing) / float32(histN)
		}
	}

	return enc, nil
}

// withQuadratic returns a new Encoded extending base with squares of the
// signed deviation columns (delta and time-series). The paper's quadratic
// features "model the variance of each variable": the square of a deviation
// measures its magnitude regardless of direction, which a single threshold
// stump cannot. Squares of the positive-valued basic counters are monotone
// transforms — redundant for stumps — so they would only waste selection
// slots. The base Encoded is left untouched (its column values are shared,
// its headers copied), so a cached base can safely serve both quadratic and
// non-quadratic callers.
func withQuadratic(base *Encoded) *Encoded {
	out := &Encoded{
		Cols:     append(make([]ml.Column, 0, 2*len(base.Cols)), base.Cols...),
		Groups:   append(make([]Group, 0, 2*len(base.Groups)), base.Groups...),
		Examples: base.Examples,
	}
	for ci, col := range base.Cols {
		if col.Categorical {
			continue // the square of a binary indicator is itself
		}
		if g := base.Groups[ci]; g != GroupDelta && g != GroupTS {
			continue
		}
		sq := make([]float32, len(col.Values))
		for i, v := range col.Values {
			sq[i] = v * v
		}
		out.Cols = append(out.Cols, ml.Column{Name: "quad:" + col.Name, Values: sq})
		out.Groups = append(out.Groups, GroupQuad)
	}
	return out
}

// imputeAt fills dst with the line's measurement at week w, carrying the
// most recent present record backward up to histWeeks when the modem was
// off, and falling back to population means for never-seen lines. The
// static plant fields and the state flag always come from the actual record
// — the DSLAM knows them even without modem sync.
func imputeAt(ds *data.Dataset, line data.LineID, week, histWeeks int, fallback []float32, dst []float32) {
	m := ds.At(line, week)
	if !m.Missing {
		copy(dst, m.F[:])
		return
	}
	lo := week - histWeeks
	if lo < 0 {
		lo = 0
	}
	for w := week - 1; w >= lo; w-- {
		prev := ds.At(line, w)
		if !prev.Missing {
			copy(dst, prev.F[:])
			// Keep the current record's own static truth.
			dst[data.FState] = m.F[data.FState]
			dst[data.FBT] = m.F[data.FBT]
			dst[data.FCrosstalk] = m.F[data.FCrosstalk]
			dst[data.FLoopLength] = m.F[data.FLoopLength]
			return
		}
	}
	copy(dst, fallback)
	dst[data.FState] = m.F[data.FState]
	dst[data.FBT] = m.F[data.FBT]
	dst[data.FCrosstalk] = m.F[data.FCrosstalk]
	dst[data.FLoopLength] = m.F[data.FLoopLength]
}

// fallbackVector is the mean feature vector over the present records of the
// examples' weeks.
func fallbackVector(ds *data.Dataset, examples []Example) []float32 {
	weeks := map[int]bool{}
	for _, ex := range examples {
		weeks[ex.Week] = true
	}
	var sum [data.NumBasicFeatures]float64
	var cnt float64
	for w := range weeks {
		for l := 0; l < ds.NumLines; l++ {
			m := ds.At(data.LineID(l), w)
			if m.Missing {
				continue
			}
			cnt++
			for f := 0; f < data.NumBasicFeatures; f++ {
				sum[f] += float64(m.F[f])
			}
		}
	}
	out := make([]float32, data.NumBasicFeatures)
	if cnt == 0 {
		return out
	}
	for f := range out {
		out[f] = float32(sum[f] / cnt)
	}
	return out
}

package features

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nevermind/internal/data"
	"nevermind/internal/ml"
	"nevermind/internal/rng"
	"nevermind/internal/sim"
)

var cached *sim.Result

func testDataset(t *testing.T) *data.Dataset {
	t.Helper()
	if cached == nil {
		res, err := sim.Run(sim.DefaultConfig(1200, 3))
		if err != nil {
			t.Fatal(err)
		}
		cached = res
	}
	return cached.Dataset
}

func encodeWeeks(t *testing.T, ds *data.Dataset, weeks []int, cfg Config) *Encoded {
	t.Helper()
	ix := data.NewTicketIndex(ds)
	enc, err := Encode(ds, ix, ExamplesForWeeks(ds, weeks), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestEncodeShape(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{30, 31}, Config{})
	wantRows := 2 * ds.NumLines
	if len(enc.Examples) != wantRows {
		t.Fatalf("%d examples, want %d", len(enc.Examples), wantRows)
	}
	// 25 basic + 25 delta + 25 ts + 4 ratios + 4 tier indicators + ticket + modem.
	want := 25 + 25 + 25 + 4 + len(data.Profiles) + 1 + 1
	if len(enc.Cols) != want {
		t.Fatalf("%d columns, want %d", len(enc.Cols), want)
	}
	for _, c := range enc.Cols {
		if len(c.Values) != wantRows {
			t.Fatalf("column %q has %d values", c.Name, len(c.Values))
		}
	}
}

func TestEncodeQuadraticColumns(t *testing.T) {
	ds := testDataset(t)
	plain := encodeWeeks(t, ds, []int{30}, Config{})
	quad := encodeWeeks(t, ds, []int{30}, Config{Quadratic: true})
	if len(quad.Cols) <= len(plain.Cols) {
		t.Fatal("quadratic encoding added no columns")
	}
	// Every quad column must be the square of its base.
	for i, g := range quad.Groups {
		if g != GroupQuad {
			continue
		}
		base := strings.TrimPrefix(quad.Cols[i].Name, "quad:")
		bi := quad.ColumnIndex(base)
		if bi < 0 {
			t.Fatalf("quad column %q has no base", quad.Cols[i].Name)
		}
		for r := 0; r < len(quad.Examples); r += 97 {
			want := quad.Cols[bi].Values[r] * quad.Cols[bi].Values[r]
			if math.Abs(float64(quad.Cols[i].Values[r]-want)) > 1e-6 {
				t.Fatalf("%q row %d = %v, want %v", quad.Cols[i].Name, r, quad.Cols[i].Values[r], want)
			}
		}
	}
	// No squares of categorical indicators.
	for i, g := range quad.Groups {
		if g == GroupQuad && strings.Contains(quad.Cols[i].Name, "is_") {
			t.Fatalf("square of indicator column %q", quad.Cols[i].Name)
		}
	}
}

func TestBasicMatchesMeasurementWhenPresent(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{40}, Config{})
	di := enc.ColumnIndex("basic:dnbr")
	for i, ex := range enc.Examples {
		m := ds.At(ex.Line, ex.Week)
		if m.Missing {
			continue
		}
		if enc.Cols[di].Values[i] != m.F[data.FDnBR] {
			t.Fatalf("basic:dnbr row %d = %v, measurement %v", i, enc.Cols[di].Values[i], m.F[data.FDnBR])
		}
	}
}

func TestImputationCarriesForward(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{40}, Config{})
	di := enc.ColumnIndex("basic:dnbr")
	si := enc.ColumnIndex("basic:state")
	for i, ex := range enc.Examples {
		m := ds.At(ex.Line, ex.Week)
		if !m.Missing {
			continue
		}
		// State reflects the actual (off) test.
		if enc.Cols[si].Values[i] != 0 {
			t.Fatalf("missing record row %d has state %v", i, enc.Cols[si].Values[i])
		}
		// dnbr must be imputed to something plausible, not zero.
		if enc.Cols[di].Values[i] <= 0 {
			t.Fatalf("missing record row %d imputed dnbr %v", i, enc.Cols[di].Values[i])
		}
	}
}

func TestDeltaIsDifference(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{41}, Config{})
	b := enc.ColumnIndex("basic:dnnmr")
	d := enc.ColumnIndex("delta:dnnmr")
	for i, ex := range enc.Examples {
		cur := ds.At(ex.Line, 41)
		prev := ds.At(ex.Line, 40)
		if cur.Missing || prev.Missing {
			continue
		}
		want := cur.F[data.FDnNMR] - prev.F[data.FDnNMR]
		if math.Abs(float64(enc.Cols[d].Values[i]-want)) > 1e-5 {
			t.Fatalf("delta row %d = %v, want %v", i, enc.Cols[d].Values[i], want)
		}
		_ = b
	}
}

func TestDeltaAtWeekZeroIsZero(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{0}, Config{})
	for ci, g := range enc.Groups {
		if g != GroupDelta {
			continue
		}
		for i, v := range enc.Cols[ci].Values {
			if v != 0 {
				t.Fatalf("week-0 delta %q row %d = %v", enc.Cols[ci].Name, i, v)
			}
		}
	}
}

func TestTimeSeriesStandardization(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{45}, Config{})
	ci := enc.ColumnIndex("ts:dnnmr")
	var sum, n float64
	for _, v := range enc.Cols[ci].Values {
		sum += float64(v)
		n++
	}
	mean := sum / n
	// Mostly-healthy lines: standardized deviation should center near 0.
	if math.Abs(mean) > 0.5 {
		t.Fatalf("ts:dnnmr mean %v, want near 0", mean)
	}
}

func TestProfileRatioNearOneForHealthySync(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{30}, Config{})
	ci := enc.ColumnIndex("profile:dnbr_ratio")
	atCap := 0
	for i, ex := range enc.Examples {
		m := ds.At(ex.Line, ex.Week)
		if m.Missing {
			continue
		}
		v := float64(enc.Cols[ci].Values[i])
		if v > 1.01 {
			t.Fatalf("line synced above profile: ratio %v", v)
		}
		if v > 0.99 {
			atCap++
		}
	}
	if atCap == 0 {
		t.Fatal("no line syncs at its profile cap; ratios look wrong")
	}
}

func TestTierIndicatorsOneHot(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{30}, Config{})
	var tierIdx []int
	for i, c := range enc.Cols {
		if strings.HasPrefix(c.Name, "profile:is_") {
			tierIdx = append(tierIdx, i)
		}
	}
	if len(tierIdx) != len(data.Profiles) {
		t.Fatalf("%d tier indicators", len(tierIdx))
	}
	for r := range enc.Examples {
		sum := float32(0)
		for _, ci := range tierIdx {
			sum += enc.Cols[ci].Values[r]
		}
		if sum != 1 {
			t.Fatalf("row %d tier indicators sum to %v", r, sum)
		}
	}
}

func TestTicketRecencyFeature(t *testing.T) {
	ds := testDataset(t)
	ix := data.NewTicketIndex(ds)
	enc := encodeWeeks(t, ds, []int{48}, Config{})
	ci := enc.ColumnIndex("ticket:days_since_last")
	day := data.SaturdayOf(48)
	for i, ex := range enc.Examples {
		v := enc.Cols[ci].Values[i]
		if last, ok := ix.Prev(ex.Line, day); ok {
			if int(v) != day-last {
				t.Fatalf("row %d days-since = %v, want %d", i, v, day-last)
			}
		} else if v != 400 {
			t.Fatalf("row %d sentinel = %v", i, v)
		}
	}
}

func TestModemOffRateInUnitInterval(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{40}, Config{})
	ci := enc.ColumnIndex("modem:off_rate")
	nonzero := false
	for _, v := range enc.Cols[ci].Values {
		if v < 0 || v > 1 {
			t.Fatalf("off_rate %v", v)
		}
		if v > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("no line ever had the modem off; unrealistic")
	}
}

func TestLabelsMatchTicketIndex(t *testing.T) {
	ds := testDataset(t)
	ix := data.NewTicketIndex(ds)
	ex := ExamplesForWeeks(ds, []int{35})
	y := Labels(ix, ex, 28)
	pos := 0
	for i, e := range ex {
		want := ix.Within(e.Line, data.SaturdayOf(35), 28)
		if y[i] != want {
			t.Fatalf("label %d = %v, want %v", i, y[i], want)
		}
		if y[i] {
			pos++
		}
	}
	if pos == 0 {
		t.Fatal("no positive labels at all")
	}
}

func TestProductColumns(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{30}, Config{})
	a := enc.ColumnIndex("basic:dnnmr")
	b := enc.ColumnIndex("basic:dncvcnt1")
	cols, err := ProductColumns(enc, []Pair{{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 {
		t.Fatalf("%d product columns", len(cols))
	}
	for r := 0; r < len(enc.Examples); r += 53 {
		want := enc.Cols[a].Values[r] * enc.Cols[b].Values[r]
		if cols[0].Values[r] != want {
			t.Fatalf("product row %d = %v, want %v", r, cols[0].Values[r], want)
		}
	}
	if !strings.Contains(cols[0].Name, "dnnmr") || !strings.Contains(cols[0].Name, "dncvcnt1") {
		t.Fatalf("product name %q", cols[0].Name)
	}
	if _, err := ProductColumns(enc, []Pair{{-1, 2}}); err == nil {
		t.Fatal("out-of-range pair accepted")
	}
}

func TestAllPairs(t *testing.T) {
	pairs := AllPairs([]int{1, 5, 9})
	if len(pairs) != 3 {
		t.Fatalf("3 choose 2 = 3, got %d", len(pairs))
	}
	if pairs[0] != (Pair{1, 5}) || pairs[2] != (Pair{5, 9}) {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestSubsetAndAppend(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{30}, Config{})
	sub, err := enc.Subset([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Cols) != 2 || sub.Cols[0].Name != enc.Cols[0].Name {
		t.Fatal("subset mangled columns")
	}
	if _, err := enc.Subset([]int{999}); err == nil {
		t.Fatal("bad subset index accepted")
	}

	extra := []ml.Column{{Name: "x", Values: make([]float32, len(enc.Examples))}}
	if err := enc.AppendColumns(extra, GroupProd); err != nil {
		t.Fatal(err)
	}
	if enc.Cols[len(enc.Cols)-1].Name != "x" {
		t.Fatal("append lost the column")
	}
	bad := []ml.Column{{Name: "y", Values: []float32{1}}}
	if err := enc.AppendColumns(bad, GroupProd); err == nil {
		t.Fatal("ragged append accepted")
	}
}

func TestSubsetRows(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{30}, Config{})
	rows := []int{0, 10, 20}
	sub, err := enc.SubsetRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Examples) != 3 {
		t.Fatalf("%d rows", len(sub.Examples))
	}
	for ci := range sub.Cols {
		for ri, r := range rows {
			if sub.Cols[ci].Values[ri] != enc.Cols[ci].Values[r] {
				t.Fatalf("row subset mismatch at col %d row %d", ci, ri)
			}
		}
	}
	if _, err := enc.SubsetRows([]int{-1}); err == nil {
		t.Fatal("bad row accepted")
	}
}

func TestEncodeValidatesExamples(t *testing.T) {
	ds := testDataset(t)
	ix := data.NewTicketIndex(ds)
	if _, err := Encode(ds, ix, nil, Config{}); err == nil {
		t.Fatal("no examples accepted")
	}
	if _, err := Encode(ds, ix, []Example{{Line: -1, Week: 0}}, Config{}); err == nil {
		t.Fatal("bad line accepted")
	}
	if _, err := Encode(ds, ix, []Example{{Line: 0, Week: 99}}, Config{}); err == nil {
		t.Fatal("bad week accepted")
	}
}

func TestIndicesOfGroups(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{30}, Config{Quadratic: true})
	hist := enc.IndicesOfGroups(GroupBasic, GroupDelta, GroupTS)
	if len(hist) != 75 {
		t.Fatalf("history groups have %d columns", len(hist))
	}
	cust := enc.IndicesOfGroups(GroupProfile, GroupTicket, GroupModem)
	if len(cust) != 4+len(data.Profiles)+2 {
		t.Fatalf("customer groups have %d columns", len(cust))
	}
	for _, i := range hist {
		if enc.Groups[i] == GroupQuad {
			t.Fatal("group filter leaked quad columns")
		}
	}
}

func TestWeekRange(t *testing.T) {
	ws := WeekRange(3, 6)
	if len(ws) != 4 || ws[0] != 3 || ws[3] != 6 {
		t.Fatalf("WeekRange = %v", ws)
	}
}

// Property: encoding is deterministic and produces finite values for
// arbitrary example subsets.
func TestEncodeDeterministicProperty(t *testing.T) {
	ds := testDataset(t)
	ix := data.NewTicketIndex(ds)
	err := quick.Check(func(seed uint64, wRaw uint8) bool {
		week := int(wRaw) % data.Weeks
		r := rng.New(seed)
		var ex []Example
		for i := 0; i < 40; i++ {
			ex = append(ex, Example{Line: data.LineID(r.Intn(ds.NumLines)), Week: week})
		}
		a, err := Encode(ds, ix, ex, Config{Quadratic: true})
		if err != nil {
			return false
		}
		b, err := Encode(ds, ix, ex, Config{Quadratic: true})
		if err != nil {
			return false
		}
		for ci := range a.Cols {
			for ri := range a.Cols[ci].Values {
				va, vb := a.Cols[ci].Values[ri], b.Cols[ci].Values[ri]
				if va != vb {
					return false
				}
				if math.IsNaN(float64(va)) || math.IsInf(float64(va), 0) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: group labels partition the columns and every column belongs to
// a named group.
func TestGroupsPartitionColumns(t *testing.T) {
	ds := testDataset(t)
	enc := encodeWeeks(t, ds, []int{20}, Config{Quadratic: true})
	if len(enc.Groups) != len(enc.Cols) {
		t.Fatal("groups not aligned with columns")
	}
	all := enc.IndicesOfGroups(GroupBasic, GroupDelta, GroupTS, GroupProfile,
		GroupTicket, GroupModem, GroupQuad, GroupProd)
	if len(all) != len(enc.Cols) {
		t.Fatalf("groups cover %d of %d columns", len(all), len(enc.Cols))
	}
	for g := GroupBasic; g <= GroupProd; g++ {
		if g.String() == "" {
			t.Fatal("unnamed group")
		}
	}
	if Group(99).String() != "Group(99)" {
		t.Fatal("unknown group string")
	}
}

// The time-series feature must fire on a genuine regime change: inject a
// synthetic collapse into a healthy line's measurements and check the
// z-score reacts.
func TestTimeSeriesDetectsRegimeChange(t *testing.T) {
	res := cached
	ds := res.Dataset
	// Copy the dataset's grid so the shared fixture is not polluted.
	mod := *ds
	mod.Measurements = append([]data.Measurement(nil), ds.Measurements...)
	line := data.LineID(7)
	week := 40
	m := &mod.Measurements[week*mod.NumLines+int(line)]
	if m.Missing {
		m.Missing = false
		m.F[data.FState] = 1
	}
	m.F[data.FDnNMR] = -5 // collapse vs its own history
	ix := data.NewTicketIndex(&mod)
	enc, err := Encode(&mod, ix, []Example{{Line: line, Week: week}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	z := enc.Cols[enc.ColumnIndex("ts:dnnmr")].Values[0]
	if z > -2 {
		t.Fatalf("ts:dnnmr = %v after a collapse; want strongly negative", z)
	}
}

package features

import (
	"reflect"
	"testing"

	"nevermind/internal/data"
	"nevermind/internal/ml"
	"nevermind/internal/sim"
)

func cacheDataset(t *testing.T) *data.Dataset {
	t.Helper()
	res, err := sim.Run(sim.DefaultConfig(400, 5))
	if err != nil {
		t.Fatal(err)
	}
	return res.Dataset
}

// TestCacheLRUBoundAndStats pins the cache mechanics: the entry count never
// exceeds the bound, eviction is least-recently-used, and the counters track
// lookups.
func TestCacheLRUBoundAndStats(t *testing.T) {
	c := NewCache(2)
	c.PutBinned("a", &ml.BinnedMatrix{N: 1})
	c.PutBinned("b", &ml.BinnedMatrix{N: 2})
	if _, ok := c.GetBinned("a"); !ok {
		t.Fatal("entry a missing before bound reached")
	}
	// a was just touched, so inserting c must evict b.
	c.PutBinned("c", &ml.BinnedMatrix{N: 3})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.GetBinned("b"); ok {
		t.Fatal("LRU evicted the wrong entry: b survived")
	}
	if bm, ok := c.GetBinned("a"); !ok || bm.N != 1 {
		t.Fatal("recently used entry a evicted")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("Stats = (%d, %d), want (2, 1)", hits, misses)
	}

	// The detailed stats agree with the legacy pair and count the eviction.
	d := c.StatsDetail()
	if d.Hits != 2 || d.Misses != 1 || d.Evictions != 1 || d.Entries != 2 {
		t.Fatalf("StatsDetail = %+v", d)
	}

	// A nil cache is inert but safe.
	var nc *Cache
	if _, ok := nc.GetBinned("x"); ok {
		t.Fatal("nil cache returned a hit")
	}
	nc.PutBinned("x", nil)
	if h, m := nc.Stats(); h != 0 || m != 0 || nc.Len() != 0 {
		t.Fatal("nil cache tracked state")
	}
	if d := nc.StatsDetail(); d != (CacheStats{}) {
		t.Fatalf("nil cache StatsDetail = %+v", d)
	}
}

// TestCacheEvictionCounter: every insertion beyond the bound evicts exactly
// one entry, and the counter tracks them.
func TestCacheEvictionCounter(t *testing.T) {
	c := NewCache(3)
	for i := 0; i < 10; i++ {
		c.PutBinned(string(rune('a'+i)), &ml.BinnedMatrix{N: i})
	}
	d := c.StatsDetail()
	if d.Entries != 3 {
		t.Fatalf("entries = %d, want the bound 3", d.Entries)
	}
	if d.Evictions != 7 {
		t.Fatalf("evictions = %d, want 7", d.Evictions)
	}
}

// TestExamplesKeySensitivity: the fingerprint must distinguish different
// lines, weeks, orders and lengths — anything that changes encoding.
func TestExamplesKeySensitivity(t *testing.T) {
	base := []Example{{Line: 1, Week: 30}, {Line: 2, Week: 31}}
	same := []Example{{Line: 1, Week: 30}, {Line: 2, Week: 31}}
	if ExamplesKey(base) != ExamplesKey(same) {
		t.Fatal("identical example lists hash differently")
	}
	variants := [][]Example{
		{{Line: 2, Week: 30}, {Line: 2, Week: 31}},
		{{Line: 1, Week: 31}, {Line: 2, Week: 31}},
		{{Line: 2, Week: 31}, {Line: 1, Week: 30}},
		{{Line: 1, Week: 30}},
		{},
	}
	for vi, v := range variants {
		if ExamplesKey(v) == ExamplesKey(base) {
			t.Fatalf("variant %d collides with base", vi)
		}
	}
}

// TestEncodeCachedMatchesEncode: cached encoding must be byte-for-byte the
// plain Encode result, for both the base and quadratic configurations, on
// hit and miss alike — and quadratic callers must reuse the cached base
// (one base encode, two results).
func TestEncodeCachedMatchesEncode(t *testing.T) {
	ds := cacheDataset(t)
	ix := data.NewTicketIndex(ds)
	examples := ExamplesForWeeks(ds, []int{30, 31})

	for _, quad := range []bool{false, true} {
		cfg := Config{Quadratic: quad}
		want, err := Encode(ds, ix, examples, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCache(0)
		first, err := EncodeCached(c, ds, ix, examples, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, want) {
			t.Fatalf("quad=%v: cached miss result differs from Encode", quad)
		}
		second, err := EncodeCached(c, ds, ix, examples, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if second != first {
			t.Fatalf("quad=%v: cache hit returned a different object", quad)
		}
		if hits, _ := c.Stats(); hits == 0 {
			t.Fatalf("quad=%v: second encode did not hit", quad)
		}
	}

	// Base-then-quadratic shares the base encode: the quadratic call's base
	// lookup must hit the entry the plain call stored.
	c := NewCache(0)
	baseEnc, err := EncodeCached(c, ds, ix, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h0, _ := c.Stats()
	quadEnc, err := EncodeCached(c, ds, ix, examples, Config{Quadratic: true})
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := c.Stats()
	if h1 <= h0 {
		t.Fatal("quadratic encode did not reuse the cached base")
	}
	if len(quadEnc.Cols) <= len(baseEnc.Cols) {
		t.Fatal("quadratic encode added no columns")
	}
	// Sharing must not mutate the cached base entry.
	again, err := EncodeCached(c, ds, ix, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if again != baseEnc || len(again.Cols) != len(baseEnc.Cols) {
		t.Fatal("quadratic extension mutated the cached base encode")
	}
	for i := range baseEnc.Cols {
		if &quadEnc.Cols[i].Values[0] != &baseEnc.Cols[i].Values[0] {
			t.Fatalf("quadratic encode copied base column %d instead of sharing it", i)
		}
	}
}

// TestEncodeCachedGenerationInvalidates: the cache key covers the dataset
// generation, so a mutable source (the serving store) that stamps each
// snapshot with a new generation never gets stale encodes — the bug class
// where re-ingested tests were scored off the previous contents.
func TestEncodeCachedGenerationInvalidates(t *testing.T) {
	ds := cacheDataset(t)
	ix := data.NewTicketIndex(ds)
	examples := ExamplesForWeeks(ds, []int{30})
	c := NewCache(0)

	stale, err := EncodeCached(c, ds, ix, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// New contents, new generation — as a store ingest produces.
	for l := 0; l < ds.NumLines; l++ {
		ds.Measurements[30*ds.NumLines+l].F[0] += 100
	}
	ds.Generation++
	want, err := Encode(ds, ix, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := EncodeCached(c, ds, ix, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fresh == stale {
		t.Fatal("new generation served the previous generation's encode")
	}
	if !reflect.DeepEqual(fresh, want) {
		t.Fatal("new-generation encode differs from plain Encode of the new contents")
	}

	// Both generations stay addressable: re-asking for the old one hits it.
	ds.Generation--
	back, err := EncodeCached(c, ds, ix, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if back != stale {
		t.Fatal("previous generation's entry was lost")
	}
}

// TestEncodeCachedNilCache: a nil cache must degrade to plain Encode.
func TestEncodeCachedNilCache(t *testing.T) {
	ds := cacheDataset(t)
	ix := data.NewTicketIndex(ds)
	examples := ExamplesForWeeks(ds, []int{30})
	want, err := Encode(ds, ix, examples, Config{Quadratic: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EncodeCached(nil, ds, ix, examples, Config{Quadratic: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil-cache EncodeCached differs from Encode")
	}
}

// Package dsl models the access-network substrate of Fig. 1: the hierarchy
// BRAS → ATM switch → DSLAM → crossbox → dedicated copper loop → customer
// premises, and the physical layer of each loop. Its job is to turn a line's
// static plant (loop length, service profile, bridge taps) plus whatever
// faults are active into the 25 line features of Table 2 that the weekly
// DSLAM-initiated line test reports.
package dsl

import (
	"fmt"

	"nevermind/internal/data"
	"nevermind/internal/rng"
)

// Config sizes the simulated access network. Zero fields take defaults.
type Config struct {
	NumLines           int
	LinesPerDSLAM      int // paper: a DSLAM terminates several tens of lines
	CrossboxesPerDSLAM int
	DSLAMsPerATM       int
	ATMsPerBRAS        int
	Seed               uint64
}

// Defaults fills zero fields with production-shaped defaults.
func (c Config) Defaults() Config {
	if c.NumLines == 0 {
		c.NumLines = 10000
	}
	if c.LinesPerDSLAM == 0 {
		c.LinesPerDSLAM = 48
	}
	if c.CrossboxesPerDSLAM == 0 {
		c.CrossboxesPerDSLAM = 4
	}
	if c.DSLAMsPerATM == 0 {
		c.DSLAMsPerATM = 20
	}
	if c.ATMsPerBRAS == 0 {
		c.ATMsPerBRAS = 8
	}
	return c
}

// Line is one dedicated subscriber loop and its static plant attributes.
type Line struct {
	ID       data.LineID
	DSLAM    int32
	Crossbox int32 // global crossbox id
	ATM      int32
	BRAS     int32

	Profile  uint8   // index into data.Profiles
	LoopFt   float64 // true loop length; the test reports a noisy estimate
	StaticBT bool    // permanent bridge tap on the loop
	StaticXT bool    // loop shares a binder group with noisy neighbours
	Usage    float64 // subscriber's propensity to be online on a given day
}

// Network is the built topology.
type Network struct {
	Cfg           Config
	Lines         []Line
	NumDSLAMs     int
	NumCrossboxes int
	NumATMs       int
	NumBRAS       int
}

// Build constructs a deterministic network from the config. Lines are
// assigned to DSLAMs contiguously (line i serves DSLAM i/LinesPerDSLAM), and
// each DSLAM's lines split across its crossboxes, mirroring real plant where
// a crossbox aggregates a neighbourhood.
func Build(cfg Config) (*Network, error) {
	cfg = cfg.Defaults()
	if cfg.NumLines < 1 {
		return nil, fmt.Errorf("dsl: NumLines must be positive, got %d", cfg.NumLines)
	}
	if cfg.LinesPerDSLAM < cfg.CrossboxesPerDSLAM {
		return nil, fmt.Errorf("dsl: LinesPerDSLAM %d < CrossboxesPerDSLAM %d", cfg.LinesPerDSLAM, cfg.CrossboxesPerDSLAM)
	}
	n := &Network{Cfg: cfg}
	n.NumDSLAMs = (cfg.NumLines + cfg.LinesPerDSLAM - 1) / cfg.LinesPerDSLAM
	n.NumCrossboxes = n.NumDSLAMs * cfg.CrossboxesPerDSLAM
	n.NumATMs = (n.NumDSLAMs + cfg.DSLAMsPerATM - 1) / cfg.DSLAMsPerATM
	n.NumBRAS = (n.NumATMs + cfg.ATMsPerBRAS - 1) / cfg.ATMsPerBRAS
	n.Lines = make([]Line, cfg.NumLines)
	linesPerXBox := cfg.LinesPerDSLAM / cfg.CrossboxesPerDSLAM

	for i := range n.Lines {
		l := &n.Lines[i]
		r := rng.Derive(cfg.Seed, 0x11e, uint64(i))
		l.ID = data.LineID(i)
		l.DSLAM = int32(i / cfg.LinesPerDSLAM)
		xbox := (i % cfg.LinesPerDSLAM) / linesPerXBox
		if xbox >= cfg.CrossboxesPerDSLAM {
			xbox = cfg.CrossboxesPerDSLAM - 1
		}
		l.Crossbox = l.DSLAM*int32(cfg.CrossboxesPerDSLAM) + int32(xbox)
		l.ATM = l.DSLAM / int32(cfg.DSLAMsPerATM)
		l.BRAS = l.ATM / int32(cfg.ATMsPerBRAS)

		// Loop lengths are lognormal around ~6 kft, clamped to the range
		// ADSL serves. Neighbourhoods (crossboxes) share a distance bias.
		hood := rng.Derive(cfg.Seed, 0xb0b, uint64(l.Crossbox)).Uniform(0.7, 1.4)
		l.LoopFt = clamp(hood*r.LogNormal(8.6, 0.45), 600, 18500)

		// Service tiers: long loops cannot support fast tiers, so demand is
		// throttled by plant reality, which is what creates the paper's
		// "loop length > 15kft often needs a speed downgrade" rule.
		l.Profile = chooseProfile(r, l.LoopFt)

		l.StaticBT = r.Bool(0.12) // legacy bridge taps are common in old plant
		l.StaticXT = r.Bool(0.08) // crowded binder groups
		// Most subscribers are regulars; a dormant segment barely touches
		// the service (the line is provisioned and tested, but weeks can
		// pass without traffic) — the population behind the §5.2
		// zero-traffic incorrect predictions.
		if r.Bool(0.12) {
			l.Usage = r.Uniform(0.02, 0.12)
		} else {
			l.Usage = r.Uniform(0.15, 0.98)
		}
	}
	return n, nil
}

// chooseProfile draws a service tier, biased by what the loop supports.
func chooseProfile(r *rng.RNG, loopFt float64) uint8 {
	// Base demand mix: basic, plus, advanced, elite.
	w := []float64{0.30, 0.30, 0.28, 0.12}
	switch {
	case loopFt > 14000: // only basic trains reliably
		w = []float64{0.85, 0.13, 0.02, 0}
	case loopFt > 10000:
		w = []float64{0.45, 0.38, 0.15, 0.02}
	case loopFt > 7000:
		w = []float64{0.32, 0.33, 0.27, 0.08}
	}
	return uint8(r.Categorical(w))
}

// LinesOfDSLAM returns the half-open line-ID range [lo, hi) served by a DSLAM.
func (n *Network) LinesOfDSLAM(dslam int) (lo, hi int) {
	lo = dslam * n.Cfg.LinesPerDSLAM
	hi = lo + n.Cfg.LinesPerDSLAM
	if hi > len(n.Lines) {
		hi = len(n.Lines)
	}
	return lo, hi
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

package dsl

import (
	"math"

	"nevermind/internal/data"
	"nevermind/internal/faults"
	"nevermind/internal/rng"
)

// The physical-layer model. Measure turns a line's static plant plus the
// combined active fault effect into one Table 2 line-test record, the same
// sparse, noisy view the DSLAM gets from its weekly conversation with the
// modem (§3.3). The formulas are not a transmission-line solver; they are a
// monotone caricature that preserves the relationships operators actually
// use: attenuation grows with loop length, attainable rate falls with
// attenuation, the noise margin reflects headroom between attainable and
// provisioned rate, low margin breeds code violations and errored seconds,
// and relative capacity near 100% means the line has no headroom left.
const (
	dnAtenPerFt = 0.0040 // dB of downstream attenuation per foot of loop
	upAtenPerFt = 0.0026
	dnRateCeil  = 24000.0 // kbps attainable on a zero-length loop
	upRateCeil  = 3300.0
	trainFrac   = 0.92 // modems train slightly below attainable
)

// Measure produces the line-test record for one line in one week. eff is the
// combined effect of all faults active on the line (faults.NoEffect when
// healthy), outage reports whether the serving DSLAM has an active network
// outage (which kills sync entirely), and r must be a stream private to
// (line, week).
func Measure(l *Line, eff faults.Effect, outage bool, week int, r *rng.RNG) data.Measurement {
	m := data.Measurement{Line: l.ID, Week: week}
	prof := data.Profiles[l.Profile]

	// Is the modem reachable at test time? Low-usage subscribers power
	// their modems off; some faults (dead modem, cut pair, DSLAM card)
	// prevent the test conversation entirely.
	pOff := clamp(0.22-0.20*l.Usage, 0.02, 0.25)
	pOff = 1 - (1-pOff)*(1-eff.OffProb)
	if outage {
		pOff = 0.97
	}
	if r.Bool(pOff) {
		m.Missing = true
		// The DSLAM still knows the static plant record.
		m.F[data.FState] = 0
		m.F[data.FLoopLength] = float32(l.LoopFt * (1 + r.Normal(0, 0.08)))
		m.F[data.FBT] = b2f(l.StaticBT)
		m.F[data.FCrosstalk] = b2f(l.StaticXT)
		return m
	}
	m.F[data.FState] = 1

	// Attenuation: loop length plus fault-induced loss, plus estimate noise.
	dnAten := l.LoopFt*dnAtenPerFt + eff.AttenDelta + r.Normal(0, 0.7)
	upAten := l.LoopFt*upAtenPerFt + 0.7*eff.AttenDelta + r.Normal(0, 0.5)
	dnAten = clamp(dnAten, 1, 90)
	upAten = clamp(upAten, 1, 70)

	// Attainable rate decays with attenuation; bridge taps and crosstalk
	// reflect/inject noise that eats capacity.
	btNow := l.StaticBT || eff.BridgeTap
	xtNow := l.StaticXT || eff.Crosstalk
	capFactor := eff.RateFactor
	if btNow {
		capFactor *= 0.82
	}
	if xtNow {
		capFactor *= 0.90
	}
	dnMax := dnRateCeil * math.Exp(-dnAten/14) * capFactor * r.LogNormal(0, 0.05)
	upMax := upRateCeil * math.Exp(-upAten/16) * capFactor * r.LogNormal(0, 0.05)
	dnMax = clamp(dnMax, 64, dnRateCeil)
	upMax = clamp(upMax, 32, upRateCeil)

	// Sync rate: the modem trains to the profile cap or just below the
	// attainable rate, whichever binds.
	dnBR := math.Min(prof.DnKbps, trainFrac*dnMax)
	upBR := math.Min(prof.UpKbps, trainFrac*upMax)

	// Relative capacity: fraction of attainable capacity in use (%). The
	// operators' manual rule escalates above 92% — no headroom left.
	dnRel := 100 * dnBR / dnMax
	upRel := 100 * upBR / upMax

	// Noise margin: headroom in dB between attainable and sync rate, minus
	// fault-induced noise. 10*log2 ≈ 3 dB per doubling of headroom.
	dnNMR := 6 + 10*math.Log2(dnMax/dnBR) + eff.MarginDelta + r.Normal(0, 1.0)
	upNMR := 6 + 10*math.Log2(upMax/upBR) + 0.8*eff.MarginDelta + r.Normal(0, 1.0)
	dnNMR = clamp(dnNMR, -5, 40)
	upNMR = clamp(upNMR, -5, 40)

	// Error processes: code violations explode as margin evaporates; the
	// three CV counters use successively higher thresholds, errored seconds
	// and FEC corrections ride the same underlying noise process. The
	// counters accumulate only while the line carries traffic, so the
	// subscriber's usage scales every counter — a heavy user on a healthy
	// line can out-count a light user on a sick one, which is what makes
	// the error counters ambiguous alone and feature combinations (e.g.
	// counter × cells) informative (§4.2's derived features).
	usageF := 0.25 + 1.5*l.Usage
	lam := (2 + 28*math.Max(0, 6-dnNMR) + eff.CVRate) * usageF
	cv1 := r.Poisson(lam)
	cv2 := min(cv1, r.Poisson(lam*0.45))
	cv3 := min(cv2, r.Poisson(lam*0.15))
	es1 := r.Poisson(1 + lam/8 + eff.ESRate)
	es2 := min(es1, r.Poisson(lam/20+0.5*eff.ESRate))
	fec := r.Poisson(25 + 2*lam + eff.FECRate)

	// Impulse-noise bursts: transient interference (AM ingress, motors,
	// electric fences) floods the low-threshold counters on otherwise
	// healthy lines for part of the test window. The severe-threshold
	// counters (dncvcnt3, dnescnt2) barely move — impulse events are short
	// — so a burst week looks like a fault on dncvcnt1/dnfeccnt1 alone.
	// This is why the low-threshold counters are broadly informative but
	// unreliable in their extreme tail, while the high-threshold counters
	// are the reverse.
	if r.Bool(0.035) {
		burst := r.Exp(600 * usageF)
		cv1 += r.Poisson(burst)
		cv2 += r.Poisson(burst * 0.35)
		es1 += r.Poisson(burst / 50)
		fec += r.Poisson(burst * 2.2)
	}
	if fec < 50 {
		fec = 0 // the counter only records bursts of at least 50 corrections
	}

	// Carrier usage: attenuation knocks out the high sub-carriers.
	hiCar := clamp(255-3.2*dnAten+r.Normal(0, 4), 32, 255)

	// Rolling cell counters reflect subscriber traffic through the loop.
	dnCells := l.Usage * 4e6 * r.LogNormal(0, 0.5) * eff.CellsFactor
	upCells := dnCells * 0.15 * r.LogNormal(0, 0.3)

	m.F[data.FDnBR] = float32(dnBR)
	m.F[data.FUpBR] = float32(upBR)
	m.F[data.FDnPwr] = float32(14 + eff.PowerDelta + r.Normal(0, 0.8))
	m.F[data.FUpPwr] = float32(12 + 0.7*eff.PowerDelta + r.Normal(0, 0.8))
	m.F[data.FDnNMR] = float32(dnNMR)
	m.F[data.FUpNMR] = float32(upNMR)
	m.F[data.FDnAten] = float32(dnAten)
	m.F[data.FUpAten] = float32(upAten)
	m.F[data.FDnRelCap] = float32(dnRel)
	m.F[data.FUpRelCap] = float32(upRel)
	m.F[data.FDnCVCnt1] = float32(cv1)
	m.F[data.FDnCVCnt2] = float32(cv2)
	m.F[data.FDnCVCnt3] = float32(cv3)
	m.F[data.FDnESCnt1] = float32(es1)
	m.F[data.FDnESCnt2] = float32(es2)
	m.F[data.FDnFECCnt1] = float32(fec)
	m.F[data.FHiCar] = float32(math.Round(hiCar))
	m.F[data.FBT] = b2f(btNow)
	m.F[data.FCrosstalk] = b2f(xtNow)
	m.F[data.FLoopLength] = float32(l.LoopFt * (1 + r.Normal(0, 0.08)))
	m.F[data.FDnMaxAttainFBR] = float32(dnMax)
	m.F[data.FUpMaxAttainFBR] = float32(upMax)
	m.F[data.FDnCells] = float32(dnCells)
	m.F[data.FUpCells] = float32(upCells)
	return m
}

func b2f(b bool) float32 {
	if b {
		return 1
	}
	return 0
}

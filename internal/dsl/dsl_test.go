package dsl

import (
	"math"
	"testing"
	"testing/quick"

	"nevermind/internal/data"
	"nevermind/internal/faults"
	"nevermind/internal/rng"
)

func testNet(t *testing.T, n int) *Network {
	t.Helper()
	net, err := Build(Config{NumLines: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildShape(t *testing.T) {
	net := testNet(t, 1000)
	if len(net.Lines) != 1000 {
		t.Fatalf("built %d lines", len(net.Lines))
	}
	if net.NumDSLAMs != 21 { // ceil(1000/48)
		t.Fatalf("NumDSLAMs = %d, want 21", net.NumDSLAMs)
	}
	if net.NumATMs != 2 || net.NumBRAS != 1 {
		t.Fatalf("aggregation levels: ATMs=%d BRAS=%d", net.NumATMs, net.NumBRAS)
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(Config{NumLines: -5}); err == nil {
		t.Fatal("negative NumLines accepted")
	}
	if _, err := Build(Config{NumLines: 10, LinesPerDSLAM: 2, CrossboxesPerDSLAM: 4}); err == nil {
		t.Fatal("LinesPerDSLAM < CrossboxesPerDSLAM accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := testNet(t, 500)
	b := testNet(t, 500)
	for i := range a.Lines {
		if a.Lines[i] != b.Lines[i] {
			t.Fatalf("line %d differs across identical builds", i)
		}
	}
}

func TestHierarchyConsistent(t *testing.T) {
	net := testNet(t, 3000)
	cfg := net.Cfg
	for i, l := range net.Lines {
		if int(l.ID) != i {
			t.Fatalf("line %d has ID %d", i, l.ID)
		}
		if int(l.DSLAM) != i/cfg.LinesPerDSLAM {
			t.Fatalf("line %d on DSLAM %d", i, l.DSLAM)
		}
		if l.Crossbox/int32(cfg.CrossboxesPerDSLAM) != l.DSLAM {
			t.Fatalf("line %d crossbox %d not under DSLAM %d", i, l.Crossbox, l.DSLAM)
		}
		if l.ATM != l.DSLAM/int32(cfg.DSLAMsPerATM) {
			t.Fatalf("line %d ATM %d", i, l.ATM)
		}
		if l.BRAS != l.ATM/int32(cfg.ATMsPerBRAS) {
			t.Fatalf("line %d BRAS %d", i, l.BRAS)
		}
		if l.LoopFt < 600 || l.LoopFt > 18500 {
			t.Fatalf("line %d loop %v ft out of range", i, l.LoopFt)
		}
		if l.Usage < 0.02 || l.Usage >= 0.98 {
			t.Fatalf("line %d usage %v", i, l.Usage)
		}
		if int(l.Profile) >= len(data.Profiles) {
			t.Fatalf("line %d profile %d", i, l.Profile)
		}
	}
}

func TestLinesOfDSLAM(t *testing.T) {
	net := testNet(t, 100) // 3 DSLAMs: 48, 48, 4
	lo, hi := net.LinesOfDSLAM(0)
	if lo != 0 || hi != 48 {
		t.Fatalf("DSLAM 0 range [%d,%d)", lo, hi)
	}
	lo, hi = net.LinesOfDSLAM(2)
	if lo != 96 || hi != 100 {
		t.Fatalf("last DSLAM range [%d,%d)", lo, hi)
	}
}

func TestLongLoopsGetSlowTiers(t *testing.T) {
	net := testNet(t, 20000)
	long, longFast := 0, 0
	for _, l := range net.Lines {
		if l.LoopFt > 14000 {
			long++
			if data.Profiles[l.Profile].DnKbps > 1500 {
				longFast++
			}
		}
	}
	if long == 0 {
		t.Fatal("no long loops in a 20k-line build")
	}
	// A small mis-provisioned residue is intended — it feeds the "reduce
	// speed to stabilize the line" disposition — but fast tiers must be
	// rare on long loops.
	if frac := float64(longFast) / float64(long); frac > 0.05 {
		t.Fatalf("%.1f%% of >14kft loops sold fast tiers", 100*frac)
	}
}

func TestMeasureHealthyLine(t *testing.T) {
	net := testNet(t, 100)
	l := &net.Lines[0]
	m := Measure(l, faults.NoEffect, false, 5, rng.New(7))
	for m.Missing { // retry different streams until the modem is on
		m = Measure(l, faults.NoEffect, false, 5, rng.New(uint64(m.Week)+99))
	}
	prof := data.Profiles[l.Profile]
	if m.F[data.FDnBR] <= 0 || float64(m.F[data.FDnBR]) > prof.DnKbps+1 {
		t.Fatalf("dnbr %v outside (0, %v]", m.F[data.FDnBR], prof.DnKbps)
	}
	if m.F[data.FUpBR] <= 0 || float64(m.F[data.FUpBR]) > prof.UpKbps+1 {
		t.Fatalf("upbr %v outside (0, %v]", m.F[data.FUpBR], prof.UpKbps)
	}
	if m.F[data.FDnRelCap] <= 0 || m.F[data.FDnRelCap] > 100 {
		t.Fatalf("relcap %v outside (0,100]", m.F[data.FDnRelCap])
	}
	if m.F[data.FState] != 1 {
		t.Fatal("state should be 1 when not missing")
	}
	if m.F[data.FDnMaxAttainFBR] < m.F[data.FDnBR] {
		t.Fatalf("attainable %v below sync %v", m.F[data.FDnMaxAttainFBR], m.F[data.FDnBR])
	}
	if m.F[data.FDnCVCnt2] > m.F[data.FDnCVCnt1] || m.F[data.FDnCVCnt3] > m.F[data.FDnCVCnt2] {
		t.Fatal("CV counters must be ordered by threshold")
	}
	if m.F[data.FDnESCnt2] > m.F[data.FDnESCnt1] {
		t.Fatal("ES counters must be ordered by threshold")
	}
}

func TestMeasureDeterministicGivenStream(t *testing.T) {
	net := testNet(t, 10)
	l := &net.Lines[3]
	a := Measure(l, faults.NoEffect, false, 2, rng.Derive(9, 3, 2))
	b := Measure(l, faults.NoEffect, false, 2, rng.Derive(9, 3, 2))
	if a != b {
		t.Fatal("Measure is not deterministic for a fixed stream")
	}
}

// Severe faults must visibly degrade the line: that correlation is what the
// whole prediction pipeline learns.
func TestFaultsDegradeLine(t *testing.T) {
	net := testNet(t, 200)
	wet := faults.Catalog[4] // inside wire wet: margin and error counters
	var healthyNMR, faultyNMR, healthyCV, faultyCV float64
	samples := 0
	for i := 0; i < 200; i++ {
		l := &net.Lines[i]
		h := Measure(l, faults.NoEffect, false, 0, rng.Derive(1, uint64(i), 0))
		f := Measure(l, wet.Effect.Scale(1.2), false, 0, rng.Derive(1, uint64(i), 1))
		if h.Missing || f.Missing {
			continue
		}
		samples++
		healthyNMR += float64(h.F[data.FDnNMR])
		faultyNMR += float64(f.F[data.FDnNMR])
		healthyCV += float64(h.F[data.FDnCVCnt1])
		faultyCV += float64(f.F[data.FDnCVCnt1])
	}
	if samples < 100 {
		t.Fatalf("only %d paired samples", samples)
	}
	if faultyNMR/float64(samples) > healthyNMR/float64(samples)-3 {
		t.Fatalf("wet wiring should eat noise margin: healthy %.1f vs faulty %.1f",
			healthyNMR/float64(samples), faultyNMR/float64(samples))
	}
	if faultyCV < 3*healthyCV {
		t.Fatalf("wet wiring should multiply code violations: healthy %.0f vs faulty %.0f",
			healthyCV, faultyCV)
	}
}

func TestCutKillsSync(t *testing.T) {
	net := testNet(t, 50)
	cut := faults.Catalog[6] // inside wire cut: OffProb 0.8
	missing := 0
	for i := 0; i < 400; i++ {
		m := Measure(&net.Lines[i%50], cut.Effect.Scale(1.2), false, 0, rng.Derive(2, uint64(i)))
		if m.Missing {
			missing++
		}
	}
	if missing < 280 {
		t.Fatalf("cut wire left only %d/400 tests without sync", missing)
	}
}

func TestOutageKillsSync(t *testing.T) {
	net := testNet(t, 50)
	missing := 0
	for i := 0; i < 200; i++ {
		m := Measure(&net.Lines[i%50], faults.NoEffect, true, 0, rng.Derive(3, uint64(i)))
		if m.Missing {
			missing++
		}
	}
	if missing < 180 {
		t.Fatalf("outage left only %d/200 tests without sync", missing)
	}
}

func TestBridgeTapFlagPropagates(t *testing.T) {
	net := testNet(t, 2000)
	bt := faults.Catalog[27] // bridge tap removal: BridgeTap signature
	if !bt.Effect.BridgeTap {
		t.Fatal("catalog entry 27 should carry a bridge-tap signature")
	}
	for i := range net.Lines {
		l := &net.Lines[i]
		if l.StaticBT {
			continue
		}
		m := Measure(l, bt.Effect.Scale(1), false, 0, rng.Derive(4, uint64(i)))
		if !m.Missing && m.F[data.FBT] != 1 {
			t.Fatal("active bridge-tap fault not reflected in bt feature")
		}
		return // one non-static line is enough
	}
}

func TestAttenuationGrowsWithLoop(t *testing.T) {
	net := testNet(t, 5000)
	type pt struct{ loop, aten float64 }
	var pts []pt
	for i := range net.Lines {
		m := Measure(&net.Lines[i], faults.NoEffect, false, 0, rng.Derive(5, uint64(i)))
		if m.Missing {
			continue
		}
		pts = append(pts, pt{net.Lines[i].LoopFt, float64(m.F[data.FDnAten])})
	}
	// Pearson correlation should be strongly positive.
	var sx, sy, sxx, syy, sxy float64
	for _, p := range pts {
		sx += p.loop
		sy += p.aten
		sxx += p.loop * p.loop
		syy += p.aten * p.aten
		sxy += p.loop * p.aten
	}
	n := float64(len(pts))
	corr := (n*sxy - sx*sy) / math.Sqrt((n*sxx-sx*sx)*(n*syy-sy*sy))
	if corr < 0.95 {
		t.Fatalf("loop/attenuation correlation %.3f, want > 0.95", corr)
	}
}

func TestMeasureBoundsProperty(t *testing.T) {
	net := testNet(t, 64)
	err := quick.Check(func(seed uint64, li uint8, sev uint8, di uint8) bool {
		l := &net.Lines[int(li)%len(net.Lines)]
		d := faults.Catalog[int(di)%faults.NumDispositions]
		eff := d.Effect.Scale(float64(sev) / 64)
		m := Measure(l, eff, false, 1, rng.New(seed))
		if m.Missing {
			return m.F[data.FState] == 0
		}
		return m.F[data.FDnBR] >= 0 && m.F[data.FUpBR] >= 0 &&
			m.F[data.FDnRelCap] >= 0 && m.F[data.FDnRelCap] <= 100.01 &&
			m.F[data.FDnCVCnt1] >= 0 && m.F[data.FHiCar] >= 32 && m.F[data.FHiCar] <= 255 &&
			m.F[data.FDnAten] >= 1 && m.F[data.FDnAten] <= 90 &&
			m.F[data.FDnCells] >= 0 && m.F[data.FUpCells] >= 0
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMissingRateReflectsUsage(t *testing.T) {
	net := testNet(t, 1)
	l := net.Lines[0]
	low, high := l, l
	low.Usage = 0.2
	high.Usage = 0.95
	missLow, missHigh := 0, 0
	for i := 0; i < 2000; i++ {
		if Measure(&low, faults.NoEffect, false, 0, rng.Derive(6, uint64(i))).Missing {
			missLow++
		}
		if Measure(&high, faults.NoEffect, false, 0, rng.Derive(7, uint64(i))).Missing {
			missHigh++
		}
	}
	if missLow <= missHigh {
		t.Fatalf("low-usage line missing %d, high-usage %d; modem-off should track usage", missLow, missHigh)
	}
}

package churn

import (
	"math"
	"testing"
	"testing/quick"

	"nevermind/internal/data"
	"nevermind/internal/sim"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	bad := []func(*Model){
		func(m *Model) { m.BaseChurnProb = -0.1 },
		func(m *Model) { m.BaseChurnProb = 1.5 },
		func(m *Model) { m.PerDayDelay = -1 },
		func(m *Model) { m.RepeatMultiplier = 0.5 },
		func(m *Model) { m.RepeatWindowDays = 0 },
		func(m *Model) { m.TruckRollUSD = -5 },
	}
	for i, mutate := range bad {
		m := Default()
		mutate(&m)
		if m.Validate() == nil {
			t.Fatalf("bad model %d accepted", i)
		}
	}
}

func TestChurnProbMonotoneInLatency(t *testing.T) {
	m := Default()
	prev := -1.0
	for d := 0; d <= 30; d++ {
		p := m.TicketChurnProb(d, 0)
		if p < prev {
			t.Fatalf("churn hazard fell at %d days", d)
		}
		prev = p
	}
}

func TestChurnProbGrowsWithRepeats(t *testing.T) {
	m := Default()
	if m.TicketChurnProb(2, 1) <= m.TicketChurnProb(2, 0) {
		t.Fatal("repeat ticket not worse than first")
	}
	if m.TicketChurnProb(2, 3) <= m.TicketChurnProb(2, 1) {
		t.Fatal("third repeat not worse than first repeat")
	}
}

func TestChurnProbClamped(t *testing.T) {
	err := quick.Check(func(lat uint8, rep uint8) bool {
		p := Default().TicketChurnProb(int(lat), int(rep)%12)
		return p >= 0 && p <= 0.9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := Default().TicketChurnProb(-5, 0); p != Default().TicketChurnProb(0, 0) {
		t.Fatalf("negative latency not clamped: %v", p)
	}
}

func TestAssessKnownStream(t *testing.T) {
	m := Default()
	ds := &data.Dataset{
		NumLines:  2,
		ProfileOf: []uint8{0, 0},
		DSLAMOf:   []int32{0, 0},
		NumDSLAMs: 1,
		UsageOf:   []float32{0.5, 0.5},
	}
	for w := 0; w < data.Weeks; w++ {
		for l := 0; l < 2; l++ {
			ds.Measurements = append(ds.Measurements, data.Measurement{Line: data.LineID(l), Week: w})
		}
	}
	ds.Tickets = []data.Ticket{
		{ID: 0, Line: 0, Day: 100, Category: data.CatCustomerEdge},
		{ID: 1, Line: 0, Day: 110, Category: data.CatCustomerEdge}, // repeat within 60d
		{ID: 2, Line: 1, Day: 120, Category: data.CatBilling},      // not priced
	}
	ds.Notes = []data.DispositionNote{
		{TicketID: 0, Line: 0, Day: 102, Disposition: 1, TestsRun: 2},
		{TicketID: 1, Line: 0, Day: 113, Disposition: 1, TestsRun: 2},
	}
	a, err := m.Assess(ds, 0, 364)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tickets != 2 || a.Dispatches != 2 {
		t.Fatalf("counts %+v", a)
	}
	wantOpex := 2*m.CallUSD + 2*m.TruckRollUSD
	if math.Abs(a.OpexUSD-wantOpex) > 1e-9 {
		t.Fatalf("opex %v, want %v", a.OpexUSD, wantOpex)
	}
	p0 := m.TicketChurnProb(2, 0)
	p1 := m.TicketChurnProb(3, 1) // second ticket: one prior within 60d
	if math.Abs(a.ExpectedChurners-(p0+p1)) > 1e-12 {
		t.Fatalf("churners %v, want %v", a.ExpectedChurners, p0+p1)
	}
	if a.TotalUSD() <= a.OpexUSD {
		t.Fatal("total must include churn cost")
	}
}

func TestAssessWindowFilters(t *testing.T) {
	m := Default()
	ds := &data.Dataset{
		NumLines: 1, ProfileOf: []uint8{0}, DSLAMOf: []int32{0}, NumDSLAMs: 1, UsageOf: []float32{0.5},
	}
	for w := 0; w < data.Weeks; w++ {
		ds.Measurements = append(ds.Measurements, data.Measurement{Line: 0, Week: w})
	}
	ds.Tickets = []data.Ticket{
		{ID: 0, Line: 0, Day: 50, Category: data.CatCustomerEdge},
		{ID: 1, Line: 0, Day: 200, Category: data.CatCustomerEdge},
	}
	a, err := m.Assess(ds, 150, 250)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tickets != 1 {
		t.Fatalf("window kept %d tickets", a.Tickets)
	}
}

func TestAssessOnSimulatedYear(t *testing.T) {
	res, err := sim.Run(sim.DefaultConfig(1500, 3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Default().Assess(res.Dataset, 0, data.DaysInYear-1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tickets < 100 {
		t.Fatalf("only %d tickets priced", a.Tickets)
	}
	if a.ExpectedChurners <= 0 || a.ExpectedChurners > float64(a.Tickets) {
		t.Fatalf("churners %v of %d tickets", a.ExpectedChurners, a.Tickets)
	}
	// Mean churn hazard per ticket should be in the configured few-percent
	// regime.
	mean := a.ExpectedChurners / float64(a.Tickets)
	if mean < 0.005 || mean > 0.15 {
		t.Fatalf("mean churn hazard %v outside regime", mean)
	}
	if a.OpexUSD <= 0 || a.ChurnUSD <= 0 {
		t.Fatalf("degenerate costs %+v", a)
	}
}

func TestValuePerEliminatedTicket(t *testing.T) {
	m := Default()
	v := m.ValuePerEliminatedTicket(0.9, 2)
	if v <= m.CallUSD {
		t.Fatal("eliminated ticket worth no more than the call")
	}
	// More truck rolls → more value.
	if m.ValuePerEliminatedTicket(1, 2) <= m.ValuePerEliminatedTicket(0.1, 2) {
		t.Fatal("value not increasing in dispatch fraction")
	}
}

// Package churn quantifies the paper's motivating economics: "a lengthy
// resolution can lead to customer dissatisfaction and ultimately lead to
// churn, i.e., customers terminating their contracts" (§1). It attaches a
// churn hazard to every customer-edge ticket — growing with resolution
// latency and with repeat tickets — and prices the outcome in support opex
// and lost subscription revenue, so a deployment study can state what a
// predicted-and-prevented ticket is actually worth.
package churn

import (
	"fmt"
	"math"

	"nevermind/internal/data"
)

// Model prices tickets and churn.
type Model struct {
	// BaseChurnProb is the churn probability a promptly-resolved, first
	// ticket carries.
	BaseChurnProb float64
	// PerDayDelay adds churn probability per day between the ticket and
	// its dispatch ("it may take one or more days... lead to churn").
	PerDayDelay float64
	// RepeatMultiplier scales the hazard for each prior ticket within the
	// repeat window ("the customer needs to call multiple times").
	RepeatMultiplier float64
	// RepeatWindowDays defines what counts as a repeat.
	RepeatWindowDays int
	// MonthlyRevenueUSD per subscriber, and the horizon of months a
	// churned subscriber's revenue is lost for.
	MonthlyRevenueUSD float64
	HorizonMonths     float64
	// TruckRollUSD and CallUSD price the reactive machinery.
	TruckRollUSD, CallUSD float64
}

// Default reflects 2009 US DSL economics: ~$35/month plans, ~$150 truck
// rolls, ~$8 handled calls, and a 1-2% per-bad-experience churn hazard.
func Default() Model {
	return Model{
		BaseChurnProb:     0.01,
		PerDayDelay:       0.004,
		RepeatMultiplier:  1.8,
		RepeatWindowDays:  60,
		MonthlyRevenueUSD: 35,
		HorizonMonths:     18,
		TruckRollUSD:      150,
		CallUSD:           8,
	}
}

// Validate checks the model is usable.
func (m Model) Validate() error {
	switch {
	case m.BaseChurnProb < 0 || m.BaseChurnProb > 1:
		return fmt.Errorf("churn: base probability %v", m.BaseChurnProb)
	case m.PerDayDelay < 0:
		return fmt.Errorf("churn: negative delay hazard")
	case m.RepeatMultiplier < 1:
		return fmt.Errorf("churn: repeat multiplier below 1")
	case m.RepeatWindowDays < 1:
		return fmt.Errorf("churn: repeat window %d", m.RepeatWindowDays)
	case m.MonthlyRevenueUSD < 0 || m.HorizonMonths < 0 || m.TruckRollUSD < 0 || m.CallUSD < 0:
		return fmt.Errorf("churn: negative prices")
	}
	return nil
}

// TicketChurnProb is the churn hazard of one ticket given its resolution
// latency in days and how many tickets preceded it within the repeat
// window. Clamped to [0, 0.9].
func (m Model) TicketChurnProb(latencyDays, priorRepeats int) float64 {
	if latencyDays < 0 {
		latencyDays = 0
	}
	p := (m.BaseChurnProb + m.PerDayDelay*float64(latencyDays)) *
		math.Pow(m.RepeatMultiplier, float64(priorRepeats))
	if p > 0.9 {
		p = 0.9
	}
	return p
}

// Assessment is the priced outcome of a ticket stream.
type Assessment struct {
	Tickets          int
	Dispatches       int
	ExpectedChurners float64
	OpexUSD          float64 // calls + truck rolls
	ChurnUSD         float64 // lost subscription revenue
}

// TotalUSD is the full cost of the assessed stream.
func (a Assessment) TotalUSD() float64 { return a.OpexUSD + a.ChurnUSD }

// Assess prices the dataset's customer-edge tickets between loDay and hiDay
// inclusive.
func (m Model) Assess(ds *data.Dataset, loDay, hiDay int) (Assessment, error) {
	if err := m.Validate(); err != nil {
		return Assessment{}, err
	}
	dispatchDay := make(map[int]int, len(ds.Notes))
	for _, n := range ds.Notes {
		dispatchDay[n.TicketID] = n.Day
	}
	// Ticket history per line for repeat counting.
	history := map[data.LineID][]int{}
	var a Assessment
	for _, t := range ds.Tickets {
		if t.Category != data.CatCustomerEdge {
			continue
		}
		// Repeat count looks at the line's full history, including tickets
		// before the assessment window.
		priors := 0
		for _, d := range history[t.Line] {
			if t.Day-d <= m.RepeatWindowDays {
				priors++
			}
		}
		history[t.Line] = append(history[t.Line], t.Day)

		if t.Day < loDay || t.Day > hiDay {
			continue
		}
		a.Tickets++
		a.OpexUSD += m.CallUSD
		latency := 0
		if dd, ok := dispatchDay[t.ID]; ok {
			a.Dispatches++
			a.OpexUSD += m.TruckRollUSD
			latency = dd - t.Day
		} else {
			// Never dispatched: the problem dragged on; charge the full
			// repeat window as perceived latency.
			latency = m.RepeatWindowDays / 4
		}
		p := m.TicketChurnProb(latency, priors)
		a.ExpectedChurners += p
		a.ChurnUSD += p * m.MonthlyRevenueUSD * m.HorizonMonths
	}
	return a, nil
}

// ValuePerEliminatedTicket is the expected saving from one ticket that never
// happens: the call, the likely truck roll, and the averted churn hazard of
// a typical (promptly-resolved, first-occurrence) ticket.
func (m Model) ValuePerEliminatedTicket(dispatchFraction, meanLatencyDays float64) float64 {
	v := m.CallUSD + dispatchFraction*m.TruckRollUSD
	v += m.TicketChurnProb(int(meanLatencyDays), 0) * m.MonthlyRevenueUSD * m.HorizonMonths
	return v
}

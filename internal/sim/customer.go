package sim

import (
	"math"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/dsl"
	"nevermind/internal/faults"
	"nevermind/internal/rng"
)

// rawTicket is a ticket before global ID assignment, carrying its dispatch
// outcome when one happened.
type rawTicket struct {
	line        data.LineID
	day         int
	category    data.TicketCategory
	dispatched  bool
	dispatchDay int
	disp        faults.DispositionID
	testsRun    int
}

// walkFault plays out the life of one fault: the customer notices it (or
// not), reports it (unless the outage IVR swallows the call or they are on
// vacation), a technician is dispatched, the repair succeeds or the customer
// has to call again. It mutates f.End to when the fault actually cleared and
// returns the tickets generated.
//
// This walk is the source of every label property the paper analyses:
// low-perceivability faults produce the long report delays of Fig. 8, away
// customers produce the not-on-site incorrect predictions, IVR suppression
// produces the outage-correlated incorrect predictions of Table 5, and
// failed repairs produce the repeat tickets the "ticket" feature exploits.
func walkFault(cfg Config, ds *data.Dataset, line *dsl.Line, away []data.AwaySpan, d *faults.Disposition, f *Fault, r *rng.RNG) []rawTicket {
	selfHeal := f.Onset + 1 + int(r.Exp(cfg.SelfHealMeanDays))
	if selfHeal > data.DaysInYear {
		selfHeal = data.DaysInYear
	}
	f.End = selfHeal

	// Daily probability an at-home customer notices the symptom: they must
	// be online (usage) and the symptom must be perceivable at this
	// severity. Severe hard-down faults get noticed the first session.
	pNotice := line.Usage * d.Perceivability * math.Min(f.Sev, 1.5) / 2.4
	pNotice = clamp01(pNotice)
	if pNotice < 0.005 {
		pNotice = 0.005
	}

	var out []rawTicket
	day := f.Onset
	for attempt := 0; attempt < 8; attempt++ {
		// Find the day the customer notices.
		noticeDay := -1
		for t := day; t < f.End; t++ {
			if isAway(away, t) {
				continue
			}
			if r.Bool(pNotice) {
				noticeDay = t
				break
			}
		}
		if noticeDay < 0 {
			return out // fault self-heals unreported
		}

		// Report: call-queue delay, plus weekend deferral to Monday, which
		// produces the weekly arrival pattern of §3.3.
		reportDay := noticeDay + r.Geometric(0.7)
		if wd := data.Weekday(reportDay); wd == time.Saturday || wd == time.Sunday {
			if r.Bool(cfg.WeekendDeferProb) {
				for data.Weekday(reportDay) != time.Monday {
					reportDay++
				}
			}
		}
		if reportDay >= data.DaysInYear {
			return out
		}

		// A DSLAM outage puts the IVR in front of the call: the customer
		// reported a problem but no ticket is issued (§5.2).
		if ds.OutageAt(int(line.DSLAM), reportDay, reportDay) {
			if !r.Bool(cfg.ReportRetryProb) {
				return out // customer assumes it was the outage
			}
			day = reportDay + 1
			continue
		}

		tk := rawTicket{line: line.ID, day: reportDay, category: data.CatCustomerEdge}
		if r.Bool(cfg.AgentLabelNoise) {
			// The agent misfiles the ticket; no technician is sent, the
			// fault lives on, and the customer has to call again.
			tk.category = data.CatOther
			out = append(out, tk)
			day = reportDay + 1 + r.Geometric(0.3)
			continue
		}

		// Dispatch.
		delay := cfg.DispatchDelayMin
		if cfg.DispatchDelayMax > cfg.DispatchDelayMin {
			delay += r.Intn(cfg.DispatchDelayMax - cfg.DispatchDelayMin + 1)
		}
		dispatchDay := reportDay + delay
		if dispatchDay >= data.DaysInYear {
			out = append(out, tk)
			return out
		}
		tk.dispatched = true
		tk.dispatchDay = dispatchDay
		tk.disp = noteDisposition(d.ID, cfg.NoteLabelNoise, r)
		tk.testsRun = 1 + r.Geometric(0.3)
		out = append(out, tk)

		if r.Bool(cfg.FixProb) {
			if dispatchDay < f.End {
				f.End = dispatchDay
			}
			return out
		}
		// Repair failed: the fault persists and the customer will notice
		// again — a repeat ticket.
		day = dispatchDay + 1
	}
	return out
}

// noteDisposition applies the technician labelling noise: usually the true
// disposition, sometimes a confusable one at the same major location. When
// several devices are suspect, real notes blame the one closest to the end
// host; BlameClosest implements that rule for callers with overlapping
// faults.
func noteDisposition(truth faults.DispositionID, noise float64, r *rng.RNG) faults.DispositionID {
	if !r.Bool(noise) {
		return truth
	}
	ids := faults.ByLocation(faults.Catalog[truth].Loc)
	return ids[r.Intn(len(ids))]
}

// BlameClosest returns the disposition of the active fault closest to the
// end host, the paper's stated labelling convention for multi-fault lines
// ("the code is always associated with the device closest to the end host").
func BlameClosest(active []Fault) faults.DispositionID {
	if len(active) == 0 {
		return faults.None
	}
	best := active[0].Disp
	for _, f := range active[1:] {
		if faults.Catalog[f.Disp].Proximity < faults.Catalog[best].Proximity {
			best = f.Disp
		}
	}
	return best
}

func isAway(spans []data.AwaySpan, day int) bool {
	for _, s := range spans {
		if day >= s.StartDay && day <= s.EndDay {
			return true
		}
	}
	return false
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.95 {
		return 0.95
	}
	return x
}

package sim

import (
	"math"
	"testing"

	"nevermind/internal/data"
	"nevermind/internal/faults"
)

func TestWetnessSeriesShape(t *testing.T) {
	w := genWeather(DefaultConfig(100, 5), 6)
	if len(w) != 6 {
		t.Fatalf("%d regions", len(w))
	}
	for a, series := range w {
		if len(series) != data.Weeks {
			t.Fatalf("region %d has %d weeks", a, len(series))
		}
		for _, v := range series {
			if v < 0 || v > 1 {
				t.Fatalf("wetness %v out of [0,1]", v)
			}
		}
	}
	// Regions differ.
	same := true
	for wk := 0; wk < data.Weeks; wk++ {
		if w[0][wk] != w[1][wk] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("regions share identical weather")
	}
}

func TestWetnessAutocorrelated(t *testing.T) {
	w := genWeather(DefaultConfig(100, 7), 20)
	// Lag-1 autocorrelation across all regions should be clearly positive
	// (the AR(1) coefficient is 0.72).
	var sxy, sxx, syy, sx, sy float64
	n := 0.0
	for _, series := range w {
		for t2 := 1; t2 < len(series); t2++ {
			x, y := series[t2-1], series[t2]
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
			n++
		}
	}
	corr := (n*sxy - sx*sy) / math.Sqrt((n*sxx-sx*sx)*(n*syy-sy*sy))
	if corr < 0.4 {
		t.Fatalf("lag-1 autocorrelation %.2f; wetness should persist", corr)
	}
}

func TestHazardTableWeatherScaling(t *testing.T) {
	weather := [][]float64{make([]float64, data.Weeks)}
	for wk := range weather[0] {
		weather[0][wk] = 1 // permanently wet
	}
	tbl := buildHazardTable(weather, 0.45)
	weights, total := tbl.at(0, data.SaturdayOf(10))
	base := hazardWeights()
	var wantTotal float64
	for i := range base {
		want := base[i]
		if faults.Catalog[i].WeatherSensitive {
			want *= 1.45
		}
		if math.Abs(weights[i]-want) > 1e-15 {
			t.Fatalf("weight %d = %v, want %v", i, weights[i], want)
		}
		wantTotal += want
	}
	if math.Abs(total-wantTotal) > 1e-12 {
		t.Fatalf("total %v, want %v", total, wantTotal)
	}
}

func TestHazardTableZeroAmplitudeIsBaseline(t *testing.T) {
	weather := genWeather(DefaultConfig(100, 9), 3)
	tbl := buildHazardTable(weather, 0)
	base := hazardWeights()
	for a := int32(0); a < 3; a++ {
		_, total := tbl.at(a, 100)
		if math.Abs(total-faults.TotalHazard()) > 1e-12 {
			t.Fatalf("amplitude 0 changed the hazard: %v", total)
		}
		w, _ := tbl.at(a, 200)
		for i := range base {
			if w[i] != base[i] {
				t.Fatalf("amplitude 0 changed weight %d", i)
			}
		}
	}
}

func TestHazardTablePreMeasurementDays(t *testing.T) {
	weather := genWeather(DefaultConfig(100, 11), 1)
	tbl := buildHazardTable(weather, 0.45)
	// Days before the first Saturday fall back to week 0.
	w0, t0 := tbl.at(0, 0)
	wSat, tSat := tbl.at(0, data.FirstSaturday)
	if t0 != tSat {
		t.Fatalf("pre-measurement total %v != week-0 total %v", t0, tSat)
	}
	for i := range w0 {
		if w0[i] != wSat[i] {
			t.Fatal("pre-measurement weights differ from week 0")
		}
	}
}

// Moisture faults must actually concentrate in wet weeks: that is the whole
// point of the weather process.
func TestMoistureFaultsTrackWetness(t *testing.T) {
	cfg := DefaultConfig(8000, 13)
	cfg.WeatherAmplitude = 0.9 // accentuate for the statistical test
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Split weeks into wet and dry halves per region, count sensitive
	// onsets per line-week in each.
	var wetOnsets, dryOnsets, wetWeeks, dryWeeks float64
	for li, fs := range res.Truth {
		atm := res.Net.Lines[li].ATM
		for _, f := range fs {
			if !faults.Catalog[f.Disp].WeatherSensitive {
				continue
			}
			week, ok := data.WeekOf(f.Onset)
			if !ok {
				continue
			}
			if res.Wetness[atm][week] > 0.5 {
				wetOnsets++
			} else {
				dryOnsets++
			}
		}
	}
	for _, series := range res.Wetness {
		for _, v := range series {
			if v > 0.5 {
				wetWeeks++
			} else {
				dryWeeks++
			}
		}
	}
	if wetOnsets < 50 || dryOnsets < 10 {
		t.Fatalf("too few onsets to compare: wet=%v dry=%v", wetOnsets, dryOnsets)
	}
	// Rate per exposure-week must be clearly higher in wet weeks.
	wetRate := wetOnsets / wetWeeks
	dryRate := dryOnsets / dryWeeks
	if wetRate < 1.3*dryRate {
		t.Fatalf("moisture onsets: wet rate %.3f vs dry rate %.3f; weather has no bite", wetRate, dryRate)
	}
}

func TestWeatherChangesOutcome(t *testing.T) {
	a, err := Run(DefaultConfig(500, 5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(500, 5)
	cfg.WeatherAmplitude = 0
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Dataset.Tickets) == len(b.Dataset.Tickets) {
		same := true
		for i := range a.Dataset.Tickets {
			if a.Dataset.Tickets[i] != b.Dataset.Tickets[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("weather amplitude had no effect on the ticket stream")
		}
	}
}

package sim

import (
	"fmt"
	"sort"

	"nevermind/internal/data"
	"nevermind/internal/dsl"
	"nevermind/internal/faults"
	"nevermind/internal/rng"
)

// Fault is one injected fault instance on a line: a disposition with a drawn
// severity, active on days [Onset, End).
type Fault struct {
	Disp  faults.DispositionID
	Sev   float64
	Onset int
	End   int // exclusive; data.DaysInYear if never cleared in-year
}

// Result is a simulated year: the operator-visible Dataset plus the hidden
// ground truth (the actual fault instances) that tests and analyses can
// consult but the learning pipeline must never see.
type Result struct {
	Dataset *data.Dataset
	Net     *dsl.Network
	// Truth holds each line's fault instances, ordered by onset.
	Truth [][]Fault
	// Wetness is the regional weather series, [ATM][week] in [0,1].
	Wetness [][]float64
}

// Run simulates one year of network operation.
func Run(cfg Config) (*Result, error) {
	net, err := dsl.Build(cfg.Net)
	if err != nil {
		return nil, err
	}
	if cfg.DispatchDelayMin < 0 || cfg.DispatchDelayMax < cfg.DispatchDelayMin {
		return nil, fmt.Errorf("sim: dispatch delay range [%d,%d] malformed", cfg.DispatchDelayMin, cfg.DispatchDelayMax)
	}
	nLines := len(net.Lines)

	ds := &data.Dataset{
		NumLines:    nLines,
		NumDSLAMs:   net.NumDSLAMs,
		ProfileOf:   make([]uint8, nLines),
		DSLAMOf:     make([]int32, nLines),
		UsageOf:     make([]float32, nLines),
		TrafficSeed: rng.Derive(cfg.Seed, 0x7a5).Uint64(),
	}
	for i := range net.Lines {
		ds.ProfileOf[i] = net.Lines[i].Profile
		ds.DSLAMOf[i] = net.Lines[i].DSLAM
		ds.UsageOf[i] = float32(net.Lines[i].Usage)
	}

	// Phase 1: environment — DSLAM outages (needed before customer
	// behaviour: IVR) and the regional wetness series that modulates the
	// moisture-driven fault hazards.
	ds.Outages = genOutages(cfg, net.NumDSLAMs)
	weather := genWeather(cfg, net.NumATMs)
	hazards := buildHazardTable(weather, cfg.WeatherAmplitude)

	// Phase 2: per-line behaviour — vacations, fault lifecycles, tickets.
	res := &Result{Dataset: ds, Net: net, Truth: make([][]Fault, nLines), Wetness: weather}
	var tickets []rawTicket
	awayOf := make([][]data.AwaySpan, nLines)

	for li := range net.Lines {
		line := &net.Lines[li]
		r := rng.Derive(cfg.Seed, 0xcafe, uint64(li))

		// Vacations: mostly short trips, with a long tail of extended
		// absences (seasonal homes, work postings) that outlast the 4-week
		// label window — the §5.2 not-on-site population.
		if r.Bool(cfg.VacationProb) {
			length := 5 + r.Intn(10)
			if r.Bool(0.25) {
				length = 20 + r.Intn(41)
			}
			start := r.Intn(data.DaysInYear - length)
			span := data.AwaySpan{Line: line.ID, StartDay: start, EndDay: start + length}
			ds.Aways = append(ds.Aways, span)
			awayOf[li] = append(awayOf[li], span)
		}

		// Fault onsets: one Bernoulli(total hazard) draw per day, then a
		// categorical pick of the disposition, with the week's regional
		// weather folded into the weights.
		for day := 0; day < data.DaysInYear; day++ {
			weights, total := hazards.at(line.ATM, day)
			if !r.Bool(total) {
				continue
			}
			d := &faults.Catalog[r.Categorical(weights)]
			f := Fault{
				Disp:  d.ID,
				Sev:   r.Uniform(d.SeverityLo, d.SeverityHi),
				Onset: day,
				End:   data.DaysInYear,
			}
			// Walk the fault's life: notice → report → dispatch → fix,
			// with IVR suppression and repeat tickets.
			lineTickets := walkFault(cfg, ds, line, awayOf[li], d, &f, r)
			tickets = append(tickets, lineTickets...)
			res.Truth[li] = append(res.Truth[li], f)
			if f.End > day {
				// Faults on one line do not overlap: the next onset draw
				// resumes after this fault clears, which keeps dispatch
				// attribution unambiguous (see BlameClosest for the
				// multi-fault labelling rule).
				day = f.End - 1
			}
		}

		// Non-edge tickets (billing etc.).
		for day := 0; day < data.DaysInYear; day++ {
			if r.Bool(cfg.OtherTicketRate) {
				cat := data.CatBilling
				if r.Bool(0.4) {
					cat = data.CatOther
				}
				tickets = append(tickets, rawTicket{line: line.ID, day: day, category: cat})
			}
		}
	}

	// Phase 3: assign IDs in day order and materialise notes.
	sort.SliceStable(tickets, func(i, j int) bool { return tickets[i].day < tickets[j].day })
	for i, t := range tickets {
		ds.Tickets = append(ds.Tickets, data.Ticket{ID: i, Line: t.line, Day: t.day, Category: t.category})
		if t.dispatched {
			ds.Notes = append(ds.Notes, data.DispositionNote{
				TicketID: i, Line: t.line, Day: t.dispatchDay,
				Disposition: int(t.disp), TestsRun: t.testsRun,
			})
		}
	}

	// Phase 4: weekly Saturday line tests.
	ds.Measurements = make([]data.Measurement, data.Weeks*nLines)
	for w := 0; w < data.Weeks; w++ {
		day := data.SaturdayOf(w)
		outageNow := make(map[int32]bool)
		prodrome := make(map[int32]float64) // DSLAM → ramp scale (0,1]
		for _, o := range ds.Outages {
			if o.Active(day) {
				outageNow[int32(o.DSLAM)] = true
			}
			// A DSLAM heading for an outage (flaking card, failing power
			// feed) degrades every line it serves for a stretch before it
			// dies outright, ramping up as the failure nears. Most
			// customers shrug the degradation off, but the Saturday test
			// sees it — which is what makes clustered predictions an
			// outage early-warning (§5.2).
			if o.StartDay > day && o.StartDay <= day+prodromeDays &&
				rng.Derive(cfg.Seed, 0xd15e, uint64(o.DSLAM), uint64(o.StartDay)).Bool(prodromeProb) {
				s := 1 - float64(o.StartDay-day)/float64(prodromeDays)
				if s > prodrome[int32(o.DSLAM)] {
					prodrome[int32(o.DSLAM)] = s
				}
			}
		}
		for li := range net.Lines {
			line := &net.Lines[li]
			eff := faults.NoEffect
			for _, f := range res.Truth[li] {
				if f.Onset <= day && day < f.End {
					eff = eff.Combine(faults.Catalog[f.Disp].Effect.Scale(f.Sev))
				}
			}
			if s := prodrome[line.DSLAM]; s > 0 {
				eff = eff.Combine(prodromeEffect.Scale(s))
			}
			if isAway(awayOf[li], day) {
				// An away subscriber generates no traffic, so the rolling
				// cell counters collapse even though the loop is healthy.
				eff.CellsFactor *= 0.02
			}
			outage := outageNow[line.DSLAM]
			mr := rng.Derive(cfg.Seed, 0x7e57, uint64(li), uint64(w))
			ds.Measurements[w*nLines+li] = dsl.Measure(line, eff, outage, w, mr)
		}
	}

	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("sim: generated invalid dataset: %w", err)
	}
	return res, nil
}

// prodromeDays is how long before an outage the serving DSLAM visibly
// degrades its lines, and prodromeProb is the share of outages that announce
// themselves this way (hard failures — power, cable cuts — come unannounced).
const (
	prodromeDays = 30
	prodromeProb = 0.12
)

// prodromeEffect is the mild whole-DSLAM degradation of a failing DSLAM:
// enough to move the line tests, rarely enough for a customer to call. It
// ramps up as the outage approaches (scaled by 1 − daysUntil/prodromeDays),
// which is what spreads the Table 5 growth across the 1..4 week horizons.
var prodromeEffect = faults.Effect{
	RateFactor:  0.99,
	CellsFactor: 0.97,
	MarginDelta: -1,
	CVRate:      13,
	ESRate:      4,
	FECRate:     20,
	OffProb:     0.015,
}

// hazardWeights returns the catalog hazards as categorical weights.
func hazardWeights() []float64 {
	w := make([]float64, faults.NumDispositions)
	for i := range faults.Catalog {
		w[i] = faults.Catalog[i].Hazard
	}
	return w
}

// genOutages draws the DSLAM outage processes.
func genOutages(cfg Config, numDSLAMs int) []data.Outage {
	var outages []data.Outage
	for d := 0; d < numDSLAMs; d++ {
		r := rng.Derive(cfg.Seed, 0x017, uint64(d))
		for day := 0; day < data.DaysInYear; day++ {
			if !r.Bool(cfg.Outage.HazardPerDSLAMDay) {
				continue
			}
			dur := 1 + r.Geometric(1/cfg.Outage.MeanDurationDays)
			end := day + dur - 1
			if end >= data.DaysInYear {
				end = data.DaysInYear - 1
			}
			outages = append(outages, data.Outage{DSLAM: d, StartDay: day, EndDay: end})
			day = end + 1 // no overlapping outages at one DSLAM
		}
	}
	sort.Slice(outages, func(i, j int) bool { return outages[i].StartDay < outages[j].StartDay })
	return outages
}

package sim

import (
	"reflect"
	"testing"

	"nevermind/internal/data"
)

var allScenarioKinds = []ScenarioKind{ScenarioFirmware, ScenarioWeather, ScenarioAging, ScenarioOutage}

func TestScenarioParseRoundTrip(t *testing.T) {
	for _, kind := range allScenarioKinds {
		for _, sc := range []Scenario{
			DefaultScenario(kind),
			{Kind: kind, Week: 12, Weeks: 3, Frac: 0.25, Mag: 2.5, Seed: 99},
		} {
			got, err := ParseScenario(sc.String())
			if err != nil {
				t.Fatalf("ParseScenario(%q): %v", sc.String(), err)
			}
			if got != sc {
				t.Fatalf("round trip %q: got %+v want %+v", sc.String(), got, sc)
			}
		}
	}
	// A bare kind is the default pack.
	got, err := ParseScenario("weather")
	if err != nil || got != DefaultScenario(ScenarioWeather) {
		t.Fatalf("bare kind: %+v, %v", got, err)
	}
}

func TestScenarioParseRejects(t *testing.T) {
	for _, spec := range []string{
		"",
		"quantum",
		"firmware:week",
		"firmware:week=x",
		"firmware:color=red",
		"firmware:week=-1",
		"firmware:week=52",
		"firmware:weeks=0",
		"firmware:frac=0",
		"firmware:frac=1.5",
		"firmware:mag=0",
		"firmware:mag=NaN",
		"outage:seed=-3",
	} {
		if _, err := ParseScenario(spec); err == nil {
			t.Errorf("ParseScenario(%q) accepted", spec)
		}
	}
}

// TestScenarioApplyPure: Apply is a pure function of (scenario, line, week)
// — applying the same scenario to two copies of a batch yields identical
// results, and a second application stream over an identical base source
// matches the first batch for batch. This is what makes chaos re-delivery
// and replay determinism structural.
func TestScenarioApplyPure(t *testing.T) {
	ds := sourceDataset(t)
	for _, kind := range allScenarioKinds {
		sc := DefaultScenario(kind)
		sc.Week = 41
		sc.Weeks = 4

		mkStream := func() []Batch {
			src, err := NewSource(ds, 40, 47)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := NewScenarioSource(src, sc)
			if err != nil {
				t.Fatal(err)
			}
			var out []Batch
			for {
				b, ok, err := ss.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				out = append(out, b)
			}
			return out
		}
		a, b := mkStream(), mkStream()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: two replays of the scenario stream differ", kind)
		}

		// Re-applying to a fresh copy of the same base batch reproduces the
		// transformed batch exactly (the chaos wrapper's re-pull contract).
		src, err := NewSource(ds, 42, 42)
		if err != nil {
			t.Fatal(err)
		}
		base, _ := src.Next()
		c1 := cloneBatch(base)
		c2 := cloneBatch(base)
		sc.Apply(&c1)
		sc.Apply(&c2)
		if !reflect.DeepEqual(c1, c2) {
			t.Fatalf("%v: Apply is not deterministic", kind)
		}
	}
}

func cloneBatch(b Batch) Batch {
	c := b
	c.Tests = append([]LineTest(nil), b.Tests...)
	c.Tickets = append([]data.Ticket(nil), b.Tickets...)
	return c
}

// TestScenarioPreservesDayOrder: injected tickets stay inside their batch's
// week, every batch remains day-sorted, and batches never overlap in days —
// the invariant the ticket index (and so the drift monitors' label windows)
// depends on.
func TestScenarioPreservesDayOrder(t *testing.T) {
	ds := sourceDataset(t)
	for _, kind := range allScenarioKinds {
		sc := DefaultScenario(kind)
		sc.Week = 41
		sc.Mag = 2 // crank injection rates so every pack actually injects
		src, err := NewSource(ds, 40, 49)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := NewScenarioSource(src, sc)
		if err != nil {
			t.Fatal(err)
		}
		prevMax := -1
		injected := 0
		for {
			b, ok, err := ss.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			for i, tk := range b.Tickets {
				if i > 0 && tk.Day < b.Tickets[i-1].Day {
					t.Fatalf("%v: week %d tickets out of day order", kind, b.Week)
				}
				if tk.Day <= prevMax && tk.ID >= scenarioTicketBase {
					t.Fatalf("%v: week %d injected ticket on day %d overlaps the previous batch (max %d)",
						kind, b.Week, tk.Day, prevMax)
				}
				if tk.Day > data.SaturdayOf(b.Week) {
					t.Fatalf("%v: week %d ticket past its Saturday", kind, b.Week)
				}
				if tk.ID >= scenarioTicketBase {
					injected++
					if tk.Category != data.CatCustomerEdge {
						t.Fatalf("%v: injected ticket with category %v", kind, tk.Category)
					}
					if tk.Day <= data.SaturdayOf(b.Week)-7 {
						t.Fatalf("%v: injected ticket on day %d outside week %d", kind, tk.Day, b.Week)
					}
				}
			}
			if n := len(b.Tickets); n > 0 && b.Tickets[n-1].Day > prevMax {
				prevMax = b.Tickets[n-1].Day
			}
		}
		if injected == 0 {
			t.Fatalf("%v: scenario injected no tickets over its window", kind)
		}
	}
}

// TestScenarioShiftsFeatures: each pack actually disturbs the affected
// weeks and leaves the weeks before the start untouched.
func TestScenarioShiftsFeatures(t *testing.T) {
	ds := sourceDataset(t)
	for _, kind := range allScenarioKinds {
		sc := DefaultScenario(kind)
		sc.Week = 42
		src, err := NewSource(ds, 41, 44)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := NewScenarioSource(src, sc)
		if err != nil {
			t.Fatal(err)
		}
		for {
			b, ok, err := ss.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			changed := 0
			for i := range b.Tests {
				orig := ds.At(b.Tests[i].M.Line, b.Week)
				if b.Tests[i].M != *orig {
					changed++
				}
			}
			if b.Week < sc.Week && changed != 0 {
				t.Fatalf("%v: week %d before the scenario start has %d modified tests", kind, b.Week, changed)
			}
			if b.Week >= sc.Week && changed == 0 {
				t.Fatalf("%v: active week %d modified no tests", kind, b.Week)
			}
		}
	}
}

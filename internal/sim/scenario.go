package sim

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"nevermind/internal/data"
	"nevermind/internal/rng"
)

// Drift scenario packs: deterministic disturbances layered on top of a
// simulated year, the worlds the drift-detection loop (internal/drift) is
// exercised against. Each pack rewrites the weekly batches of a base Source
// in flight — shifting feature distributions, flipping lines to Missing,
// injecting the correlated customer tickets the new regime produces — as a
// pure function of (scenario, line, week). Purity is the load-bearing
// property: a re-pulled week (the chaos layer's re-delivery contract) and a
// replayed run both see bit-identical batches.
//
// The four packs mirror the network-vs-premise shifts TelApart and the PNM
// line-monitoring work motivate:
//
//   - firmware: an overnight mass firmware rollout. Affected modems report
//     inflated noise margins from the rollout week on; a buggy subset
//     additionally stops reporting its error counters while the customers
//     behind it start calling. The old model reads "pristine line" exactly
//     where tickets now cluster — the distribution shift that makes a
//     frozen model actively wrong, not just stale.
//   - weather: a seasonal weather front over a region's DSLAMs — margins
//     sag and error counters climb on a ramp that builds and clears.
//   - aging: plant aging — an affected cohort degrades a little more every
//     week, with ticket propensity growing alongside.
//   - outage: a regional DSLAM outage storm — for the storm weeks, lines
//     behind the hit DSLAMs test as Missing or error-swamped and their
//     subscribers call in bursts.

// ScenarioKind names one drift scenario pack.
type ScenarioKind int

const (
	ScenarioFirmware ScenarioKind = iota
	ScenarioWeather
	ScenarioAging
	ScenarioOutage
)

func (k ScenarioKind) String() string {
	switch k {
	case ScenarioFirmware:
		return "firmware"
	case ScenarioWeather:
		return "weather"
	case ScenarioAging:
		return "aging"
	case ScenarioOutage:
		return "outage"
	}
	return fmt.Sprintf("ScenarioKind(%d)", int(k))
}

// Scenario parameterises one drift pack.
type Scenario struct {
	Kind ScenarioKind
	// Week is the first disturbed week.
	Week int
	// Weeks is the disturbance length for the bounded packs (weather,
	// outage) and the ramp horizon for aging; firmware persists to the end
	// of the stream regardless.
	Weeks int
	// Frac is the affected fraction — of lines (firmware, aging) or of
	// DSLAMs (weather, outage).
	Frac float64
	// Mag scales every shift and injected-ticket rate (1 = nominal).
	Mag float64
	// Seed drives the affected-set hashes and ticket draws.
	Seed uint64
}

// DefaultScenario returns the nominal parameters for a pack.
func DefaultScenario(kind ScenarioKind) Scenario {
	return Scenario{Kind: kind, Week: 40, Weeks: 8, Frac: 0.5, Mag: 1, Seed: 1}
}

// ParseScenario parses a scenario spec of the form
//
//	kind[:key=value,key=value,...]
//
// where kind is firmware, weather, aging or outage, and the keys are week,
// weeks, frac, mag and seed. Unknown kinds, unknown keys, malformed values
// and out-of-range parameters are all rejected.
func ParseScenario(s string) (Scenario, error) {
	name, params, _ := strings.Cut(s, ":")
	var kind ScenarioKind
	switch name {
	case "firmware":
		kind = ScenarioFirmware
	case "weather":
		kind = ScenarioWeather
	case "aging":
		kind = ScenarioAging
	case "outage":
		kind = ScenarioOutage
	default:
		return Scenario{}, fmt.Errorf("sim: unknown scenario kind %q", name)
	}
	sc := DefaultScenario(kind)
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Scenario{}, fmt.Errorf("sim: scenario parameter %q is not key=value", kv)
			}
			var err error
			switch key {
			case "week":
				sc.Week, err = strconv.Atoi(val)
			case "weeks":
				sc.Weeks, err = strconv.Atoi(val)
			case "frac":
				sc.Frac, err = strconv.ParseFloat(val, 64)
			case "mag":
				sc.Mag, err = strconv.ParseFloat(val, 64)
			case "seed":
				sc.Seed, err = strconv.ParseUint(val, 10, 64)
			default:
				return Scenario{}, fmt.Errorf("sim: unknown scenario parameter %q", key)
			}
			if err != nil {
				return Scenario{}, fmt.Errorf("sim: scenario parameter %s=%q: %v", key, val, err)
			}
		}
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// Validate checks the parameter ranges.
func (sc Scenario) Validate() error {
	switch sc.Kind {
	case ScenarioFirmware, ScenarioWeather, ScenarioAging, ScenarioOutage:
	default:
		return fmt.Errorf("sim: unknown scenario kind %d", int(sc.Kind))
	}
	if sc.Week < 0 || sc.Week >= data.Weeks {
		return fmt.Errorf("sim: scenario week %d outside [0,%d)", sc.Week, data.Weeks)
	}
	if sc.Weeks < 1 {
		return fmt.Errorf("sim: scenario weeks %d < 1", sc.Weeks)
	}
	if sc.Frac <= 0 || sc.Frac > 1 {
		return fmt.Errorf("sim: scenario frac %v outside (0,1]", sc.Frac)
	}
	if sc.Mag <= 0 || math.IsNaN(sc.Mag) || math.IsInf(sc.Mag, 0) {
		return fmt.Errorf("sim: scenario mag %v must be a positive finite number", sc.Mag)
	}
	return nil
}

// String renders the spec in the form ParseScenario accepts.
func (sc Scenario) String() string {
	return fmt.Sprintf("%s:week=%d,weeks=%d,frac=%v,mag=%v,seed=%d",
		sc.Kind, sc.Week, sc.Weeks, sc.Frac, sc.Mag, sc.Seed)
}

// Hash-site labels partitioning the scenario seed.
const (
	scnSiteLine   uint64 = iota + 0x5c1 // per-line affected draw
	scnSiteDSLAM                        // per-DSLAM affected draw
	scnSiteBuggy                        // firmware buggy-subset draw
	scnSiteTicket                       // per-(line,week) ticket draw
	scnSiteDay                          // injected ticket day
	scnSiteDark                         // outage dark-modem draw
)

// scenarioTicketBase keeps injected ticket ids clear of the simulator's.
const scenarioTicketBase = 100_000_000

// ScenarioSource rewrites a base stream through a scenario pack. Its Next
// signature matches serve.Source structurally, so it plugs straight into
// the pipeline (and under the chaos wrapper, which re-serves a week from
// its own cache — the transform being a pure function of (line, week) keeps
// re-pulled weeks identical anyway).
type ScenarioSource struct {
	base *Source
	sc   Scenario
}

// NewScenarioSource layers a scenario pack over a base stream.
func NewScenarioSource(base *Source, sc Scenario) (*ScenarioSource, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &ScenarioSource{base: base, sc: sc}, nil
}

// Remaining reports how many batches Next will still produce.
func (s *ScenarioSource) Remaining() int { return s.base.Remaining() }

// Next pulls the next base week and applies the scenario to it.
func (s *ScenarioSource) Next() (Batch, bool, error) {
	b, ok := s.base.Next()
	if !ok {
		return b, false, nil
	}
	s.sc.Apply(&b)
	return b, true, nil
}

// Apply rewrites one weekly batch in place: feature shifts on the affected
// tests, plus the regime's injected customer-edge tickets (ids offset by
// scenarioTicketBase, days inside the batch's week so the stream stays in
// day order). A batch outside the scenario's active window is untouched.
func (sc Scenario) Apply(b *Batch) {
	w := b.Week
	if w < sc.Week {
		return
	}
	active := w < sc.Week+sc.Weeks
	var injected []data.Ticket
	for i := range b.Tests {
		t := &b.Tests[i]
		line := uint64(t.M.Line)
		switch sc.Kind {
		case ScenarioFirmware:
			// Firmware persists once rolled out; no end week.
			if !sc.hit(scnSiteLine, line) || t.M.Missing {
				continue
			}
			f := &t.M.F
			f[data.FDnNMR] += float32(10 * sc.Mag)
			f[data.FUpNMR] += float32(6 * sc.Mag)
			f[data.FDnMaxAttainFBR] += float32(1500 * sc.Mag)
			if sc.hitAt(scnSiteBuggy, line, 0.5) {
				// The buggy build: margins read even healthier, the error
				// counters go dark, and the customers start calling.
				f[data.FDnNMR] += float32(8 * sc.Mag)
				f[data.FUpNMR] += float32(5 * sc.Mag)
				f[data.FDnCVCnt1] = 0
				f[data.FDnCVCnt2] = 0
				f[data.FDnCVCnt3] = 0
				f[data.FDnESCnt1] = 0
				f[data.FDnESCnt2] = 0
				f[data.FDnFECCnt1] = 0
				injected = sc.maybeTicket(injected, t.M.Line, w, 0.30*sc.Mag)
			}
		case ScenarioWeather:
			if !active || !sc.hit(scnSiteDSLAM, uint64(t.DSLAM)) || t.M.Missing {
				continue
			}
			// A front that builds and clears over the window.
			ramp := sc.Mag * math.Sin(math.Pi*float64(w-sc.Week+1)/float64(sc.Weeks+1))
			f := &t.M.F
			f[data.FDnNMR] -= float32(4 * ramp)
			f[data.FUpNMR] -= float32(3 * ramp)
			f[data.FDnBR] -= float32(250 * ramp)
			f[data.FDnCVCnt1] += float32(400 * ramp)
			f[data.FDnCVCnt2] += float32(150 * ramp)
			f[data.FDnESCnt1] += float32(30 * ramp)
			injected = sc.maybeTicket(injected, t.M.Line, w, 0.08*ramp)
		case ScenarioAging:
			if !sc.hit(scnSiteLine, line) || t.M.Missing {
				continue
			}
			// Progressive decay: a little worse every week, saturating at
			// the ramp horizon.
			age := math.Min(float64(w-sc.Week+1), float64(sc.Weeks)) * sc.Mag
			f := &t.M.F
			f[data.FDnNMR] -= float32(0.5 * age)
			f[data.FUpNMR] -= float32(0.35 * age)
			f[data.FDnCVCnt1] += float32(60 * age)
			f[data.FDnESCnt1] += float32(5 * age)
			if f[data.FDnRelCap] > 0 {
				f[data.FDnRelCap] += float32(1.2 * age) // less headroom every week
			}
			injected = sc.maybeTicket(injected, t.M.Line, w, math.Min(0.02*age, 0.35))
		case ScenarioOutage:
			if !active || !sc.hit(scnSiteDSLAM, uint64(t.DSLAM)) {
				continue
			}
			if sc.hitAtWeek(scnSiteDark, line, uint64(w), 0.6*math.Min(sc.Mag, 1)) {
				// Modem unreachable behind the dead DSLAM: no conversation,
				// no record.
				t.M.Missing = true
				t.M.F = [data.NumBasicFeatures]float32{}
			} else if !t.M.Missing {
				f := &t.M.F
				f[data.FDnCVCnt1] += float32(2000 * sc.Mag)
				f[data.FDnESCnt1] += float32(120 * sc.Mag)
				f[data.FDnESCnt2] += float32(40 * sc.Mag)
			}
			injected = sc.maybeTicket(injected, t.M.Line, w, 0.35*sc.Mag)
		}
	}
	if len(injected) > 0 {
		b.Tickets = append(b.Tickets, injected...)
		sort.SliceStable(b.Tickets, func(i, j int) bool { return b.Tickets[i].Day < b.Tickets[j].Day })
	}
}

// hit is the static per-entity affected draw (stable across weeks).
func (sc Scenario) hit(site, id uint64) bool {
	return rng.Derive(sc.Seed, site, id).Float64() < sc.Frac
}

// hitAt draws per entity under an explicit rate.
func (sc Scenario) hitAt(site, id uint64, rate float64) bool {
	return rng.Derive(sc.Seed, site, id).Float64() < rate
}

// hitAtWeek draws per (entity, week) under an explicit rate.
func (sc Scenario) hitAtWeek(site, id, week uint64, rate float64) bool {
	return rng.Derive(sc.Seed, site, id, week).Float64() < rate
}

// maybeTicket appends one injected customer-edge ticket for the line with
// the given weekly probability. The day lands inside the batch week
// (Saturday−6 .. Saturday], so ticket day order across batches is preserved
// — the label windows the drift monitors evaluate depend on it.
func (sc Scenario) maybeTicket(out []data.Ticket, line data.LineID, week int, rate float64) []data.Ticket {
	r := rng.Derive(sc.Seed, scnSiteTicket, uint64(line), uint64(week))
	if r.Float64() >= rate {
		return out
	}
	day := data.SaturdayOf(week) - rng.Derive(sc.Seed, scnSiteDay, uint64(line), uint64(week)).Intn(7)
	if day < 0 {
		day = 0
	}
	return append(out, data.Ticket{
		ID:       scenarioTicketBase + week*1_000_000 + int(line),
		Line:     line,
		Day:      day,
		Category: data.CatCustomerEdge,
	})
}

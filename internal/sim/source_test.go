package sim

import (
	"testing"

	"nevermind/internal/data"
)

func sourceDataset(t *testing.T) *data.Dataset {
	t.Helper()
	res, err := Run(DefaultConfig(300, 9))
	if err != nil {
		t.Fatal(err)
	}
	return res.Dataset
}

func TestSourceRangeValidation(t *testing.T) {
	ds := sourceDataset(t)
	for _, r := range [][2]int{{-1, 5}, {0, data.Weeks}, {10, 9}} {
		if _, err := NewSource(ds, r[0], r[1]); err == nil {
			t.Fatalf("range %v accepted", r)
		}
	}
}

func TestSourceStreamsWeeks(t *testing.T) {
	ds := sourceDataset(t)
	src, err := NewSource(ds, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if src.Remaining() != 3 {
		t.Fatalf("Remaining = %d", src.Remaining())
	}

	var allTickets []data.Ticket
	for want := 3; want <= 5; want++ {
		b, ok := src.Next()
		if !ok {
			t.Fatalf("stream ended before week %d", want)
		}
		if b.Week != want {
			t.Fatalf("batch week %d, want %d", b.Week, want)
		}
		if len(b.Tests) != ds.NumLines {
			t.Fatalf("week %d carried %d tests, want one per line", b.Week, len(b.Tests))
		}
		for i, lt := range b.Tests {
			if lt.M.Line != data.LineID(i) || lt.M.Week != want {
				t.Fatalf("test %d of week %d holds (%d,%d)", i, want, lt.M.Line, lt.M.Week)
			}
			if lt.M != *ds.At(lt.M.Line, want) {
				t.Fatalf("measurement for line %d week %d differs from the dataset", i, want)
			}
			if lt.Profile != ds.ProfileOf[i] || lt.DSLAM != ds.DSLAMOf[i] || lt.Usage != ds.UsageOf[i] {
				t.Fatalf("static attributes for line %d differ from the dataset", i)
			}
		}
		cutoff := data.SaturdayOf(want)
		for _, tk := range b.Tickets {
			if tk.Day > cutoff {
				t.Fatalf("week %d released a day-%d ticket past its Saturday %d", want, tk.Day, cutoff)
			}
		}
		allTickets = append(allTickets, b.Tickets...)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("stream did not end")
	}
	if src.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion", src.Remaining())
	}

	// Across batches the stream releases exactly the dataset's tickets up to
	// the final Saturday, in day order, each exactly once — and the first
	// batch carried the full history preceding its week.
	var want []data.Ticket
	for _, tk := range ds.Tickets {
		if tk.Day <= data.SaturdayOf(5) {
			want = append(want, tk)
		}
	}
	if len(allTickets) != len(want) {
		t.Fatalf("stream released %d tickets, dataset holds %d in range", len(allTickets), len(want))
	}
	for i := range want {
		if allTickets[i] != want[i] {
			t.Fatalf("ticket %d differs: %+v vs %+v", i, allTickets[i], want[i])
		}
	}
}

func TestSourceLateStartCarriesHistory(t *testing.T) {
	ds := sourceDataset(t)
	src, err := NewSource(ds, 40, 41)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := src.Next()
	if !ok {
		t.Fatal("no batch")
	}
	// A consumer starting at week 40 needs every prior ticket for the
	// time-since-ticket features; the first batch must reach back to day 0.
	early := 0
	for _, tk := range b.Tickets {
		if tk.Day < data.SaturdayOf(35) {
			early++
		}
	}
	if early == 0 {
		t.Fatal("first batch carries no ticket history before week 35")
	}
}

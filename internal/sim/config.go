// Package sim runs the operational year: it builds the access network,
// injects component faults from the disposition catalog, simulates customer
// perception and reporting behaviour, runs the weekly Saturday line tests,
// dispatches technicians, and emits the four data sources of §3.3 as a
// data.Dataset — the synthetic stand-in for the paper's year of AT&T
// operational data.
package sim

import (
	"nevermind/internal/dsl"
	"nevermind/internal/faults"
)

// Config parameterises one simulated year.
type Config struct {
	Net    dsl.Config
	Seed   uint64
	Outage faults.OutageConfig

	// ReportRetryProb is the chance a customer whose call was swallowed by
	// the outage IVR calls again once the outage clears rather than
	// assuming the problem was the outage.
	ReportRetryProb float64

	// WeekendDeferProb is the chance a problem noticed on a weekend is
	// reported the following Monday, producing the Monday ticket peak the
	// paper observes (§3.3).
	WeekendDeferProb float64

	// SelfHealMeanDays is the mean lifetime of a fault nobody reports:
	// intermittent problems come and go; abandoned drops get re-lashed by
	// unrelated work. Without this, unreported faults would accumulate
	// forever.
	SelfHealMeanDays float64

	// FixProb is the chance a dispatch actually resolves the fault; the
	// remainder produce the repeat tickets the paper's "ticket" feature
	// exploits.
	FixProb float64

	// AgentLabelNoise is the chance a customer agent assigns the wrong
	// coarse category to a customer-edge ticket.
	AgentLabelNoise float64

	// NoteLabelNoise is the chance the technician's disposition note blames
	// a different disposition at the same major location — the paper warns
	// the codes "can be very noisy".
	NoteLabelNoise float64

	// OtherTicketRate is the per-line per-day rate of non-edge tickets
	// (billing and such), present so category filtering is exercised.
	OtherTicketRate float64

	// VacationProb is the chance a subscriber takes a 5–14 day away span
	// during the year (the §5.2 not-on-site population).
	VacationProb float64

	// DispatchDelayMin/Max bound the days between a ticket and its
	// dispatch ("it may take one or more days").
	DispatchDelayMin, DispatchDelayMax int

	// WeatherAmplitude scales how strongly the moisture-driven disposition
	// hazards track the regional wetness process: the multiplier ranges
	// over [1−a, 1+a]. Zero disables weather entirely.
	WeatherAmplitude float64
}

// DefaultConfig returns the configuration used throughout the evaluation,
// sized by the number of lines.
func DefaultConfig(numLines int, seed uint64) Config {
	return Config{
		Net:              dsl.Config{NumLines: numLines, Seed: seed},
		Seed:             seed,
		Outage:           faults.DefaultOutageConfig,
		ReportRetryProb:  0.5,
		WeekendDeferProb: 0.6,
		SelfHealMeanDays: 80,
		FixProb:          0.85,
		AgentLabelNoise:  0.03,
		NoteLabelNoise:   0.10,
		OtherTicketRate:  2e-4,
		VacationProb:     0.5,
		DispatchDelayMin: 1,
		DispatchDelayMax: 3,
		WeatherAmplitude: 0.45,
	}
}

package sim

import (
	"testing"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/faults"
	"nevermind/internal/rng"
)

// runSmall simulates a small network once per test binary run.
var smallResult *Result

func small(t *testing.T) *Result {
	t.Helper()
	if smallResult == nil {
		res, err := Run(DefaultConfig(3000, 11))
		if err != nil {
			t.Fatal(err)
		}
		smallResult = res
	}
	return smallResult
}

func TestRunProducesValidDataset(t *testing.T) {
	res := small(t)
	if err := res.Dataset.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Truth) != res.Dataset.NumLines {
		t.Fatal("truth not per-line")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(DefaultConfig(400, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(400, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Dataset.Tickets) != len(b.Dataset.Tickets) {
		t.Fatalf("ticket counts differ: %d vs %d", len(a.Dataset.Tickets), len(b.Dataset.Tickets))
	}
	for i := range a.Dataset.Tickets {
		if a.Dataset.Tickets[i] != b.Dataset.Tickets[i] {
			t.Fatalf("ticket %d differs", i)
		}
	}
	for i := range a.Dataset.Measurements {
		if a.Dataset.Measurements[i] != b.Dataset.Measurements[i] {
			t.Fatalf("measurement %d differs", i)
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a, _ := Run(DefaultConfig(400, 5))
	b, _ := Run(DefaultConfig(400, 6))
	if len(a.Dataset.Tickets) == len(b.Dataset.Tickets) {
		// Counts could coincide; compare content.
		same := true
		for i := range a.Dataset.Tickets {
			if a.Dataset.Tickets[i] != b.Dataset.Tickets[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical ticket streams")
		}
	}
}

func TestTicketVolumeInOperatingRange(t *testing.T) {
	res := small(t)
	edge := 0
	for _, tk := range res.Dataset.Tickets {
		if tk.Category == data.CatCustomerEdge {
			edge++
		}
	}
	perLineYear := float64(edge) / float64(res.Dataset.NumLines)
	// Roughly 0.05-0.7 customer-edge tickets per line-year.
	if perLineYear < 0.05 || perLineYear > 0.7 {
		t.Fatalf("%.3f customer-edge tickets per line-year outside operating range", perLineYear)
	}
}

func TestTicketsHaveFaultCause(t *testing.T) {
	res := small(t)
	ix := map[data.LineID][]Fault{}
	for li, fs := range res.Truth {
		ix[data.LineID(li)] = fs
	}
	for _, tk := range res.Dataset.Tickets {
		if tk.Category != data.CatCustomerEdge {
			continue
		}
		found := false
		for _, f := range ix[tk.Line] {
			// The ticket must arrive during or shortly after its fault
			// (dispatch can lag the fault's repair-end by a few days).
			if tk.Day >= f.Onset && tk.Day <= f.End+7 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("ticket %d on line %d day %d has no causal fault", tk.ID, tk.Line, tk.Day)
		}
	}
}

func TestNotesReferenceRealTickets(t *testing.T) {
	res := small(t)
	byID := map[int]data.Ticket{}
	for _, tk := range res.Dataset.Tickets {
		byID[tk.ID] = tk
	}
	for _, n := range res.Dataset.Notes {
		tk, ok := byID[n.TicketID]
		if !ok {
			t.Fatalf("note references missing ticket %d", n.TicketID)
		}
		if tk.Line != n.Line {
			t.Fatalf("note line %d != ticket line %d", n.Line, tk.Line)
		}
		if n.Day < tk.Day {
			t.Fatalf("dispatch day %d before ticket day %d", n.Day, tk.Day)
		}
		if n.Disposition < 0 || n.Disposition >= faults.NumDispositions {
			t.Fatalf("note has unknown disposition %d", n.Disposition)
		}
	}
}

func TestMostEdgeTicketsGetDispatched(t *testing.T) {
	res := small(t)
	edge := 0
	for _, tk := range res.Dataset.Tickets {
		if tk.Category == data.CatCustomerEdge {
			edge++
		}
	}
	if edge == 0 {
		t.Fatal("no customer-edge tickets at all")
	}
	if float64(len(res.Dataset.Notes)) < 0.8*float64(edge) {
		t.Fatalf("only %d notes for %d edge tickets", len(res.Dataset.Notes), edge)
	}
}

// Label noise: most notes must carry the true disposition, but not all —
// the paper stresses the notes are noisy ground truth.
func TestNoteLabelNoise(t *testing.T) {
	res := small(t)
	truthAt := func(line data.LineID, day int) (faults.DispositionID, bool) {
		for _, f := range res.Truth[line] {
			if day >= f.Onset && day <= f.End+7 {
				return f.Disp, true
			}
		}
		return faults.None, false
	}
	match, total := 0, 0
	for _, n := range res.Dataset.Notes {
		truth, ok := truthAt(n.Line, n.Day)
		if !ok {
			continue
		}
		total++
		if truth == faults.DispositionID(n.Disposition) {
			match++
		}
	}
	if total < 50 {
		t.Fatalf("only %d notes with causal faults", total)
	}
	frac := float64(match) / float64(total)
	if frac < 0.80 || frac > 0.97 {
		t.Fatalf("note label accuracy %.2f outside the configured noise band", frac)
	}
}

func TestWeeklyTicketTrendPeaksMonday(t *testing.T) {
	res := small(t)
	var byDay [7]int
	for _, tk := range res.Dataset.Tickets {
		if tk.Category == data.CatCustomerEdge {
			byDay[data.Weekday(tk.Day)]++
		}
	}
	mon := byDay[time.Monday]
	for wd, n := range byDay {
		if time.Weekday(wd) == time.Monday {
			continue
		}
		if n > mon {
			t.Fatalf("tickets peak on %v (%d) not Monday (%d)", time.Weekday(wd), n, mon)
		}
	}
	weekend := byDay[time.Saturday] + byDay[time.Sunday]
	weekdayAvg := float64(byDay[time.Monday]+byDay[time.Tuesday]+byDay[time.Wednesday]+byDay[time.Thursday]+byDay[time.Friday]) / 5
	if float64(weekend)/2 >= weekdayAvg {
		t.Fatal("weekend ticket volume should be the weekly low")
	}
}

func TestFaultIntervalsWellFormed(t *testing.T) {
	res := small(t)
	for li, fs := range res.Truth {
		prevEnd := -1
		for _, f := range fs {
			if f.Onset < 0 || f.Onset >= data.DaysInYear {
				t.Fatalf("line %d fault onset %d", li, f.Onset)
			}
			if f.End < f.Onset || f.End > data.DaysInYear {
				t.Fatalf("line %d fault [%d,%d) malformed", li, f.Onset, f.End)
			}
			if f.Onset < prevEnd {
				t.Fatalf("line %d has overlapping faults", li)
			}
			prevEnd = f.End
			if f.Sev <= 0 {
				t.Fatalf("line %d fault severity %v", li, f.Sev)
			}
			d := faults.Catalog[f.Disp]
			if f.Sev < d.SeverityLo-1e-9 || f.Sev > d.SeverityHi+1e-9 {
				t.Fatalf("severity %v outside %q range", f.Sev, d.Name)
			}
		}
	}
}

// Faulty lines must look worse in the Saturday measurements than healthy
// ones — otherwise there is nothing for the predictor to learn.
func TestMeasurementsReflectFaults(t *testing.T) {
	res := small(t)
	ds := res.Dataset
	var faultyCV, healthyCV, faultyN, healthyN float64
	for li, fs := range res.Truth {
		for w := 0; w < data.Weeks; w++ {
			m := ds.At(data.LineID(li), w)
			if m.Missing {
				continue
			}
			day := data.SaturdayOf(w)
			active := false
			for _, f := range fs {
				if f.Onset <= day && day < f.End {
					active = true
					break
				}
			}
			if active {
				faultyCV += float64(m.F[data.FDnCVCnt1])
				faultyN++
			} else {
				healthyCV += float64(m.F[data.FDnCVCnt1])
				healthyN++
			}
		}
	}
	if faultyN < 100 {
		t.Fatalf("only %v faulty line-weeks measured", faultyN)
	}
	if faultyCV/faultyN < 2*(healthyCV/healthyN) {
		t.Fatalf("faulty weeks mean CV %.1f vs healthy %.1f: too weak a signal",
			faultyCV/faultyN, healthyCV/healthyN)
	}
}

func TestOutagesSuppressTickets(t *testing.T) {
	// With heavy outages and no retry, lines under an outage report less.
	cfg := DefaultConfig(1500, 17)
	cfg.Outage.HazardPerDSLAMDay = 0.004 // ~4 outage-days/DSLAM-year
	cfg.Outage.MeanDurationDays = 5
	cfg.ReportRetryProb = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No customer-edge ticket should arrive from a line while its DSLAM
	// outage is active (IVR swallows the call).
	for _, tk := range res.Dataset.Tickets {
		if tk.Category != data.CatCustomerEdge {
			continue
		}
		if res.Dataset.OutageAt(int(res.Dataset.DSLAMOf[tk.Line]), tk.Day, tk.Day) {
			t.Fatalf("ticket %d issued during an active outage", tk.ID)
		}
	}
}

func TestBlameClosest(t *testing.T) {
	if BlameClosest(nil) != faults.None {
		t.Fatal("no faults should blame None")
	}
	hn := faults.ByLocation(faults.HN)[0]
	ds := faults.ByLocation(faults.DS)[0]
	got := BlameClosest([]Fault{{Disp: ds}, {Disp: hn}})
	if got != hn {
		t.Fatalf("BlameClosest picked %v, want the HN fault", got)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(100, 1)
	cfg.DispatchDelayMin = 5
	cfg.DispatchDelayMax = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("malformed dispatch delay accepted")
	}
	cfg = DefaultConfig(0, 1)
	cfg.Net.NumLines = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad network config accepted")
	}
}

func TestWalkFaultNeverTicketsBeforeOnset(t *testing.T) {
	res := small(t)
	for _, n := range res.Dataset.Notes {
		if n.TestsRun < 1 {
			t.Fatalf("note with %d tests", n.TestsRun)
		}
	}
	_ = rng.New(0)
}

func TestSelfHealBoundsFaultLife(t *testing.T) {
	cfg := DefaultConfig(800, 23)
	cfg.SelfHealMeanDays = 3 // very short lives
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	long := 0
	for _, fs := range res.Truth {
		for _, f := range fs {
			if f.End-f.Onset > 60 {
				long++
			}
		}
	}
	if long > 0 {
		t.Fatalf("%d faults outlived aggressive self-heal by 20x", long)
	}
}

// The weekend-deferral knob is what produces the Monday ticket peak; turning
// it off must flatten the weekend dip substantially.
func TestWeekendDeferralShapesArrivals(t *testing.T) {
	weekendShare := func(defer_ float64) float64 {
		cfg := DefaultConfig(2500, 31)
		cfg.WeekendDeferProb = defer_
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wk, total := 0, 0
		for _, tk := range res.Dataset.Tickets {
			if tk.Category != data.CatCustomerEdge {
				continue
			}
			total++
			if wd := data.Weekday(tk.Day); wd == time.Saturday || wd == time.Sunday {
				wk++
			}
		}
		return float64(wk) / float64(total)
	}
	with := weekendShare(0.6)
	without := weekendShare(0)
	if with >= without {
		t.Fatalf("weekend share with deferral %.3f >= without %.3f", with, without)
	}
	if without < 1.5*with {
		t.Fatalf("deferral too weak: %.3f vs %.3f", with, without)
	}
}

// With retry disabled, IVR suppression must strictly reduce the ticket count
// relative to a retry-always world.
func TestIVRRetryKnob(t *testing.T) {
	count := func(retry float64) int {
		cfg := DefaultConfig(2500, 37)
		cfg.Outage.HazardPerDSLAMDay = 0.004 // heavy outages to exercise IVR
		cfg.Outage.MeanDurationDays = 5
		cfg.ReportRetryProb = retry
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, tk := range res.Dataset.Tickets {
			if tk.Category == data.CatCustomerEdge {
				n++
			}
		}
		return n
	}
	never := count(0)
	always := count(1)
	if never >= always {
		t.Fatalf("IVR with no retries produced %d tickets vs %d with retries", never, always)
	}
}

// Dispatch delay bounds must be respected by every note.
func TestDispatchDelayBounds(t *testing.T) {
	res := small(t)
	dayOf := map[int]int{}
	for _, tk := range res.Dataset.Tickets {
		dayOf[tk.ID] = tk.Day
	}
	cfg := DefaultConfig(0, 0)
	for _, n := range res.Dataset.Notes {
		lag := n.Day - dayOf[n.TicketID]
		if lag < cfg.DispatchDelayMin || lag > cfg.DispatchDelayMax {
			t.Fatalf("dispatch lag %d outside [%d,%d]", lag, cfg.DispatchDelayMin, cfg.DispatchDelayMax)
		}
	}
}

package sim

import (
	"fmt"

	"nevermind/internal/data"
)

// LineTest is one weekly line-test record annotated with the static line
// attributes a telemetry collector would forward alongside it (service tier,
// serving DSLAM, usage propensity). The serving subsystem's ingest path is
// shaped around exactly this record.
type LineTest struct {
	M       data.Measurement
	Profile uint8
	DSLAM   int32
	Usage   float32
}

// Batch is one week of fresh operational data: the Saturday line tests plus
// every customer ticket that arrived since the previous batch (up to and
// including this week's Saturday).
type Batch struct {
	Week    int
	Tests   []LineTest
	Tickets []data.Ticket
}

// Source streams a simulated year to a consumer week by week, the stand-in
// for the production telemetry feed: each Next call releases one Saturday's
// line tests and the ticket arrivals since the last call. The first batch
// also carries every ticket that preceded its week, so a consumer starting
// mid-year sees the full ticket history the paper's features depend on
// (time-since-last-ticket reaches arbitrarily far back).
type Source struct {
	ds        *data.Dataset
	week      int
	endWeek   int
	ticketPos int
}

// NewSource positions a stream over ds starting at startWeek (inclusive) and
// ending after endWeek (inclusive).
func NewSource(ds *data.Dataset, startWeek, endWeek int) (*Source, error) {
	if startWeek < 0 || endWeek >= data.Weeks || startWeek > endWeek {
		return nil, fmt.Errorf("sim: source weeks [%d,%d] outside [0,%d)", startWeek, endWeek, data.Weeks)
	}
	return &Source{ds: ds, week: startWeek, endWeek: endWeek}, nil
}

// Remaining reports how many batches Next will still produce.
func (s *Source) Remaining() int {
	if s.week > s.endWeek {
		return 0
	}
	return s.endWeek - s.week + 1
}

// Next returns the next weekly batch, and ok == false once the stream is
// exhausted. Tickets are released strictly in day order across batches.
func (s *Source) Next() (Batch, bool) {
	if s.week > s.endWeek {
		return Batch{}, false
	}
	w := s.week
	s.week++
	b := Batch{Week: w, Tests: make([]LineTest, 0, s.ds.NumLines)}
	for li := 0; li < s.ds.NumLines; li++ {
		b.Tests = append(b.Tests, LineTest{
			M:       *s.ds.At(data.LineID(li), w),
			Profile: s.ds.ProfileOf[li],
			DSLAM:   s.ds.DSLAMOf[li],
			Usage:   s.ds.UsageOf[li],
		})
	}
	// Tickets are sorted by day (a Dataset invariant); advance the cursor
	// through everything that has arrived by this week's Saturday.
	cutoff := data.SaturdayOf(w)
	for s.ticketPos < len(s.ds.Tickets) && s.ds.Tickets[s.ticketPos].Day <= cutoff {
		b.Tickets = append(b.Tickets, s.ds.Tickets[s.ticketPos])
		s.ticketPos++
	}
	return b, true
}

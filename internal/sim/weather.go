package sim

import (
	"nevermind/internal/data"
	"nevermind/internal/faults"
	"nevermind/internal/rng"
)

// Weather: the moisture-driven disposition families (wet conductors,
// corrosion, splice-case moisture — 13 of the 52 dispositions) do not fail
// uniformly through the year; they track rain. Each ATM region carries a
// weekly wetness process (mean-reverting AR(1) in [0,1]), and the onset
// hazard of weather-sensitive dispositions scales with it. This gives the
// ticket stream the seasonal texture operators actually see and gives the
// long-term time-series features something real to normalise away.

// genWeather draws the per-region weekly wetness series, [atm][week].
func genWeather(cfg Config, numATMs int) [][]float64 {
	out := make([][]float64, numATMs)
	for a := 0; a < numATMs; a++ {
		r := rng.Derive(cfg.Seed, 0x3a7e2, uint64(a))
		series := make([]float64, data.Weeks)
		w := clamp01w(0.5 + r.Normal(0, 0.15))
		for t := 0; t < data.Weeks; t++ {
			series[t] = w
			w = clamp01w(0.5 + 0.72*(w-0.5) + r.Normal(0, 0.14))
		}
		out[a] = series
	}
	return out
}

// hazardTable caches, per (ATM, week), the per-disposition onset weights and
// their total, with the weather multiplier applied to the sensitive entries.
type hazardTable struct {
	weights [][]float64 // [atm*Weeks + week][disposition]
	totals  []float64
}

// buildHazardTable applies the weather multiplier
// 1 + amplitude·2·(wetness − ½) to the weather-sensitive hazards.
func buildHazardTable(weather [][]float64, amplitude float64) *hazardTable {
	base := hazardWeights()
	numATMs := len(weather)
	t := &hazardTable{
		weights: make([][]float64, numATMs*data.Weeks),
		totals:  make([]float64, numATMs*data.Weeks),
	}
	for a := 0; a < numATMs; a++ {
		for w := 0; w < data.Weeks; w++ {
			mult := 1 + amplitude*2*(weather[a][w]-0.5)
			if mult < 0.05 {
				mult = 0.05
			}
			row := make([]float64, len(base))
			total := 0.0
			for i := range base {
				h := base[i]
				if faults.Catalog[i].WeatherSensitive {
					h *= mult
				}
				row[i] = h
				total += h
			}
			idx := a*data.Weeks + w
			t.weights[idx] = row
			t.totals[idx] = total
		}
	}
	return t
}

// at returns the weights and total hazard for an ATM on a given day.
func (t *hazardTable) at(atm int32, day int) ([]float64, float64) {
	week, ok := data.WeekOf(day)
	if !ok {
		week = 0
	}
	idx := int(atm)*data.Weeks + week
	return t.weights[idx], t.totals[idx]
}

func clamp01w(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
